// The telemetry layer (src/obs): histogram bucket semantics, registry
// identity and exposition, tracer ring behaviour, structured logging.
// Everything here is observational machinery — the companion guarantee,
// that telemetry never changes result bytes, is asserted end-to-end in
// test_service.cpp (TelemetryOnOffDocumentsAreByteIdentical).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace {

namespace fs = std::filesystem;
using namespace sramlp;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Fresh per-test scratch file under the system temp dir.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("sramlp_obs_test_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove(path_);
  }
  ~TempFile() { fs::remove(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

// --- clock -------------------------------------------------------------------

TEST(Clock, MonotonicNeverGoesBackwards) {
  const std::uint64_t a = obs::monotonic_micros();
  const std::uint64_t b = obs::monotonic_micros();
  EXPECT_LE(a, b);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, ObservationsLandInFirstBucketWithBoundGE) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1        -> bucket 0
  h.observe(1.0);  // == bound    -> bucket 0 (le semantics: value <= 1)
  h.observe(1.5);  //             -> bucket 1
  h.observe(4.0);  // == bound    -> bucket 2
  h.observe(4.1);  // > last      -> +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 4.1);
}

TEST(Histogram, ObserveMicrosConvertsToSeconds) {
  obs::Histogram h({1e-3, 1.0});
  h.observe_micros(500);      // 0.5 ms -> bucket 0
  h.observe_micros(250000);   // 0.25 s -> bucket 1
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0005 + 0.25);
}

TEST(Histogram, ExponentialBoundsBuildTheLadder) {
  const std::vector<double> bounds =
      obs::Histogram::exponential_bounds(1e-4, 4.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-4);
  EXPECT_DOUBLE_EQ(bounds[1], 4e-4);
  EXPECT_DOUBLE_EQ(bounds[2], 16e-4);
  EXPECT_THROW(obs::Histogram::exponential_bounds(0.0, 4.0, 3), Error);
  EXPECT_THROW(obs::Histogram::exponential_bounds(1.0, 1.0, 3), Error);
  EXPECT_THROW(obs::Histogram::exponential_bounds(1.0, 4.0, 0), Error);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), Error);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, SameIdentityReturnsSameInstance) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("jobs_total", "Jobs");
  obs::Counter& b = registry.counter("jobs_total", "Jobs");
  EXPECT_EQ(&a, &b);
  // A different label set is a different instance of the same family.
  obs::Counter& c = registry.counter("jobs_total", "Jobs", {{"kind", "sweep"}});
  EXPECT_NE(&a, &c);
  a.inc(2);
  c.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, SameNameDifferentTypeThrows) {
  obs::Registry registry;
  registry.counter("x_total", "X");
  EXPECT_THROW(registry.gauge("x_total", "X"), Error);
  EXPECT_THROW(registry.histogram("x_total", "X", {1.0}), Error);
}

TEST(Registry, HistogramReRegistrationMustKeepBuckets) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("lat_seconds", "L", {0.5, 2.0});
  EXPECT_EQ(&h, &registry.histogram("lat_seconds", "L", {0.5, 2.0}));
  EXPECT_THROW(registry.histogram("lat_seconds", "L", {0.5, 3.0}), Error);
}

TEST(Registry, PrometheusExpositionGolden) {
  obs::Registry registry;
  registry.counter("jobs_total", "Jobs handled").inc(3);
  registry.gauge("queue_depth", "Shards pending").set(-2);
  obs::Histogram& h = registry.histogram("latency_seconds", "Lease latency",
                                         {0.5, 2.0}, {{"worker", "w\"0"}});
  h.observe(0.25);
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.5);
  const std::string expected =
      "# HELP jobs_total Jobs handled\n"
      "# TYPE jobs_total counter\n"
      "jobs_total 3\n"
      "# HELP queue_depth Shards pending\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth -2\n"
      "# HELP latency_seconds Lease latency\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{worker=\"w\\\"0\",le=\"0.5\"} 1\n"
      "latency_seconds_bucket{worker=\"w\\\"0\",le=\"2\"} 3\n"
      "latency_seconds_bucket{worker=\"w\\\"0\",le=\"+Inf\"} 4\n"
      "latency_seconds_sum{worker=\"w\\\"0\"} 7.75\n"
      "latency_seconds_count{worker=\"w\\\"0\"} 4\n";
  EXPECT_EQ(registry.prometheus_text(), expected);
}

TEST(Registry, JsonExpositionCarriesTheSameNumbers) {
  obs::Registry registry;
  registry.counter("jobs_total", "Jobs").inc(7);
  obs::Histogram& h = registry.histogram("lat_seconds", "L", {1.0});
  h.observe(0.5);
  h.observe(3.0);
  const io::JsonValue doc = registry.to_json();
  EXPECT_EQ(doc.at("jobs_total").at("type").as_string(), "counter");
  EXPECT_EQ(
      doc.at("jobs_total").at("instances").at(0u).at("value").as_uint(), 7u);
  const io::JsonValue& inst = doc.at("lat_seconds").at("instances").at(0u);
  EXPECT_EQ(inst.at("counts").at(0u).as_uint(), 1u);  // <= 1.0
  EXPECT_EQ(inst.at("counts").at(1u).as_uint(), 1u);  // +Inf
  EXPECT_EQ(inst.at("count").as_uint(), 2u);
  EXPECT_DOUBLE_EQ(inst.at("sum").as_double(), 3.5);
}

TEST(Registry, ConcurrentRegistrationAndIncrementsAreExact) {
  obs::Registry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry] {
      for (std::size_t i = 0; i < kIncrements; ++i) {
        // Register-or-fetch every iteration: the registration path itself
        // must be thread-safe, not just the cached-reference fast path.
        registry.counter("shared_total", "S").inc();
        registry.histogram("shared_seconds", "S", {1e-3, 1.0})
            .observe(1e-4);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared_total", "S").value(),
            kThreads * kIncrements);
  obs::Histogram& h = registry.histogram("shared_seconds", "S", {1e-3, 1.0});
  EXPECT_EQ(h.total_count(), kThreads * kIncrements);
  EXPECT_EQ(h.bucket_count(0), kThreads * kIncrements);
}

// --- Tracer ------------------------------------------------------------------

obs::Tracer::Span make_span(const std::string& name, std::uint64_t ts) {
  obs::Tracer::Span span;
  span.name = name;
  span.category = "test";
  span.ts_us = ts;
  span.dur_us = 10;
  return span;
}

TEST(Tracer, RecordWithoutEnableDropsSpans) {
  obs::Tracer tracer;
  tracer.record(make_span("orphan", 1));
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, RingKeepsTheMostRecentWindowInOrder) {
  obs::Tracer tracer;
  tracer.enable(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 6; ++i)
    tracer.record(make_span("s" + std::to_string(i), i));
  EXPECT_EQ(tracer.size(), 4u);      // ring is full...
  EXPECT_EQ(tracer.recorded(), 6u);  // ...but it saw everything
  const io::JsonValue doc = io::JsonValue::parse(tracer.dump_chrome_json());
  const io::JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving span first: s0/s1 were overwritten.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events.at(i).at("name").as_string(),
              "s" + std::to_string(i + 2));
    EXPECT_EQ(events.at(i).at("ph").as_string(), "X");
    EXPECT_EQ(events.at(i).at("ts").as_uint(), i + 2);
  }
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST(Tracer, ReEnableClearsTheRing) {
  obs::Tracer tracer;
  tracer.enable(4);
  tracer.record(make_span("old", 1));
  tracer.enable(4);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, DumpCarriesArgsAndWritesLoadableFile) {
  obs::Tracer tracer;
  tracer.enable(8);
  obs::Tracer::Span span = make_span("shard", 100);
  span.args = {{"job", 0xdeadbeefull}, {"shard", 3}};
  tracer.record(std::move(span));
  const io::JsonValue doc = io::JsonValue::parse(tracer.dump_chrome_json());
  const io::JsonValue& event = doc.at("traceEvents").at(0u);
  EXPECT_EQ(event.at("args").at("job").as_uint(), 0xdeadbeefull);
  EXPECT_EQ(event.at("args").at("shard").as_uint(), 3u);
  EXPECT_GT(event.at("pid").as_uint(), 0u);

  TempFile file("trace");
  tracer.write_chrome_json(file.str());
  EXPECT_EQ(read_file(file.str()), tracer.dump_chrome_json());
}

TEST(Tracer, SpanGuardIsInertWhenDisabledAndRecordsWhenEnabled) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.disable();
  {
    obs::SpanGuard guard("inert", "test");
    guard.arg("ignored", 1);
    EXPECT_FALSE(guard.active());
  }
  tracer.enable(16);
  {
    obs::SpanGuard guard("live", "test");
    guard.arg("points", 12);
    EXPECT_TRUE(guard.active());
  }
  EXPECT_EQ(tracer.recorded(), 1u);
  const io::JsonValue doc = io::JsonValue::parse(tracer.dump_chrome_json());
  EXPECT_EQ(doc.at("traceEvents").at(0u).at("name").as_string(), "live");
  EXPECT_EQ(doc.at("traceEvents").at(0u).at("args").at("points").as_uint(),
            12u);
  tracer.disable();  // leave the global tracer how other tests expect it
}

// --- Logger ------------------------------------------------------------------

TEST(Log, LevelParsingRoundTripsAndRejectsJunk) {
  EXPECT_EQ(obs::log_level_from_string("trace"), obs::LogLevel::kTrace);
  EXPECT_EQ(obs::log_level_from_string("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::log_level_from_string("warning"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::log_level_from_string("off"), obs::LogLevel::kOff);
  EXPECT_THROW(obs::log_level_from_string("loud"), Error);
  EXPECT_STREQ(obs::to_string(obs::LogLevel::kDebug), "debug");
}

TEST(Log, LevelFilterDropsBelowThreshold) {
  TempFile file("filter");
  obs::Logger logger;
  logger.configure(obs::LogLevel::kWarn, obs::Logger::Format::kHuman,
                   file.str());
  logger.log(obs::LogLevel::kInfo, "test", "dropped");
  logger.log(obs::LogLevel::kWarn, "test", "kept",
             {obs::kv("shard", std::uint64_t{7})});
  logger.log(obs::LogLevel::kError, "test", "also kept");
  logger.configure(obs::LogLevel::kWarn, obs::Logger::Format::kHuman, "");
  const std::string text = read_file(file.str());
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  EXPECT_NE(text.find("WARN  test: kept shard=7"), std::string::npos);
  EXPECT_NE(text.find("ERROR test: also kept"), std::string::npos);
}

TEST(Log, JsonlLinesParseWithTypedFields) {
  TempFile file("jsonl");
  obs::Logger logger;
  logger.configure(obs::LogLevel::kDebug, obs::Logger::Format::kJsonl,
                   file.str());
  logger.log(obs::LogLevel::kInfo, "service", "worker connected",
             {obs::kv("worker", std::uint64_t{3}), obs::kv("ok", true),
              obs::kv("rate", 0.5), obs::kv_hex("job", 0xabcull)});
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman, "");
  const std::string text = read_file(file.str());
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  const io::JsonValue doc =
      io::JsonValue::parse(text.substr(0, text.size() - 1));
  EXPECT_EQ(doc.at("level").as_string(), "info");
  EXPECT_EQ(doc.at("component").as_string(), "service");
  EXPECT_EQ(doc.at("msg").as_string(), "worker connected");
  EXPECT_EQ(doc.at("worker").as_uint(), 3u);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("rate").as_double(), 0.5);
  EXPECT_EQ(doc.at("job").as_string(), "0000000000000abc");
  // ISO-8601 UTC timestamp: 2026-08-07T12:31:05.123456Z shape.
  const std::string& ts = doc.at("ts").as_string();
  ASSERT_EQ(ts.size(), 27u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(Log, OffLevelSilencesEverything) {
  TempFile file("off");
  obs::Logger logger;
  logger.configure(obs::LogLevel::kOff, obs::Logger::Format::kHuman,
                   file.str());
  logger.log(obs::LogLevel::kError, "test", "nope");
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman, "");
  EXPECT_TRUE(read_file(file.str()).empty());
}

TEST(Log, ConcurrentLoggingKeepsLinesIntact) {
  TempFile file("mt");
  obs::Logger logger;
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kJsonl,
                   file.str());
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kLines = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&logger, t] {
      for (std::size_t i = 0; i < kLines; ++i)
        logger.log(obs::LogLevel::kInfo, "mt", "line",
                   {obs::kv("thread", static_cast<std::uint64_t>(t)),
                    obs::kv("i", static_cast<std::uint64_t>(i))});
    });
  for (std::thread& t : threads) t.join();
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman, "");
  // Every line parses on its own: no interleaved or torn writes.
  std::ifstream in(file.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const io::JsonValue doc = io::JsonValue::parse(line);
    EXPECT_EQ(doc.at("msg").as_string(), "line");
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(Log, RotatesToDotOneWhenMaxBytesReached) {
  TempFile file("rotate");
  const std::string rotated = file.str() + ".1";
  std::remove(rotated.c_str());
  obs::Logger logger;
  // Cap sized so the 10 ~50-byte lines rotate exactly once (a second
  // rotation would clobber .1 — only one generation is kept).
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman,
                   file.str(), 300);
  for (int i = 0; i < 10; ++i)
    logger.log(obs::LogLevel::kInfo, "rot", "line",
               {obs::kv("i", static_cast<std::uint64_t>(i))});
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman, "");

  // The overflow moved to <path>.1 and the live file started over; no
  // line was lost or torn across the boundary.
  const std::string old_text = read_file(rotated);
  const std::string new_text = read_file(file.str());
  EXPECT_FALSE(old_text.empty());
  EXPECT_NE(old_text.find("i=0"), std::string::npos);
  std::size_t total = 0;
  for (const std::string& text : {old_text, new_text})
    for (const char c : text)
      if (c == '\n') ++total;
  EXPECT_EQ(total, 10u);
  std::remove(rotated.c_str());
}

TEST(Log, RotationCountsPreexistingBytes) {
  TempFile file("rotate_resume");
  const std::string rotated = file.str() + ".1";
  std::remove(rotated.c_str());
  {
    std::ofstream out(file.str());
    out << std::string(190, 'x') << '\n';  // already near the cap
  }
  obs::Logger logger;
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman,
                   file.str(), 200);
  logger.log(obs::LogLevel::kInfo, "rot", "tips the scale");
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman, "");
  // The append crossed the cap, so everything so far rotated out.
  const std::string old_text = read_file(rotated);
  EXPECT_NE(old_text.find("xxx"), std::string::npos);
  EXPECT_NE(old_text.find("tips the scale"), std::string::npos);
  EXPECT_TRUE(read_file(file.str()).empty());
  std::remove(rotated.c_str());
}

TEST(Log, NoMaxBytesNeverRotates) {
  TempFile file("no_rotate");
  const std::string rotated = file.str() + ".1";
  std::remove(rotated.c_str());
  obs::Logger logger;
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman,
                   file.str());
  for (int i = 0; i < 50; ++i)
    logger.log(obs::LogLevel::kInfo, "rot", "line");
  logger.configure(obs::LogLevel::kInfo, obs::Logger::Format::kHuman, "");
  std::ifstream in(rotated);
  EXPECT_FALSE(in.good());
}

}  // namespace
