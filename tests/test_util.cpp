// Unit tests for the util module: tables, charts, RNG, statistics, units.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "util/ascii_chart.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace sramlp;

// --- table ---------------------------------------------------------------

TEST(Table, RendersHeadersAndRows) {
  util::Table t({"Algorithm", "PRR"});
  t.add_row({"March C-", "47.3 %"});
  const std::string s = t.str("Table 1");
  EXPECT_NE(s.find("Table 1"), std::string::npos);
  EXPECT_NE(s.find("Algorithm"), std::string::npos);
  EXPECT_NE(s.find("March C-"), std::string::npos);
  EXPECT_NE(s.find("47.3 %"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  util::Table t({"A"});
  t.add_row({"wide-cell-content"});
  const std::string s = t.str();
  // Every rendered line between rules must share the same width.
  std::vector<std::string> lines;
  std::string line;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  ASSERT_GE(lines.size(), 4u);
  for (const auto& l : lines) EXPECT_EQ(l.size(), lines.front().size());
}

TEST(Table, RejectsMismatchedRowWidth) {
  util::Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(util::Table({}), Error);
}

TEST(Table, CountsRows) {
  util::Table t({"A"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

// --- formatting ----------------------------------------------------------

TEST(Format, FixedDecimals) {
  EXPECT_EQ(util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(util::fmt(2.0, 0), "2");
}

TEST(Format, Percent) {
  EXPECT_EQ(util::fmt_percent(0.473), "47.3 %");
  EXPECT_EQ(util::fmt_percent(0.5, 0), "50 %");
}

TEST(Format, Count) { EXPECT_EQ(util::fmt_count(512), "512"); }

// --- units ---------------------------------------------------------------

TEST(Units, RoundTrip) {
  EXPECT_DOUBLE_EQ(units::as_fJ(65 * units::fJ), 65.0);
  EXPECT_DOUBLE_EQ(units::as_pJ(1.28 * units::pJ), 1.28);
  EXPECT_DOUBLE_EQ(units::as_ns(3 * units::ns), 3.0);
  EXPECT_DOUBLE_EQ(units::as_mV(400 * units::mV), 400.0);
  EXPECT_DOUBLE_EQ(units::as_uA(28 * units::uA), 28.0);
}

// --- rng -----------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBounds) {
  util::Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 512ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  util::Rng rng(11);
  util::shuffle(v, rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Rng, ShuffleActuallyShuffles) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  util::Rng rng(13);
  util::shuffle(v, rng);
  int moved = 0;
  for (int i = 0; i < 100; ++i)
    if (v[static_cast<std::size_t>(i)] != i) ++moved;
  EXPECT_GT(moved, 80);
}

// --- stats ---------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  util::RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, EmptyIsZero) {
  util::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(ApproxEqual, RelativeTolerance) {
  EXPECT_TRUE(util::approx_equal(100.0, 100.0 + 1e-8, 1e-9));
  EXPECT_FALSE(util::approx_equal(100.0, 101.0, 1e-9));
  EXPECT_TRUE(util::approx_equal(100.0, 101.0, 0.02));
  EXPECT_TRUE(util::approx_equal(0.0, 0.0));
}

// --- ascii chart ---------------------------------------------------------

TEST(AsciiChart, DrawsSeriesGlyphs) {
  util::Series s;
  s.name = "v";
  s.glyph = '*';
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  util::ChartOptions opt;
  opt.width = 40;
  opt.height = 10;
  const std::string chart = util::render_chart({s}, opt);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("100.00"), std::string::npos);  // y max label
}

TEST(AsciiChart, LegendListsAllSeries) {
  util::Series a{"alpha", 'a', {0, 1}, {0, 1}};
  util::Series b{"beta", 'b', {0, 1}, {1, 0}};
  const std::string chart = util::render_chart({a, b}, {});
  EXPECT_NE(chart.find("alpha"), std::string::npos);
  EXPECT_NE(chart.find("beta"), std::string::npos);
}

TEST(AsciiChart, RejectsBadInput) {
  EXPECT_THROW(util::render_chart({}, {}), Error);
  util::Series s{"x", '*', {0.0}, {}};
  EXPECT_THROW(util::render_chart({s}, {}), Error);
}

TEST(AsciiChart, FixedYBoundsClipOutliers) {
  util::Series s{"v", '*', {0, 1, 2}, {0.5, 5.0, 0.5}};
  util::ChartOptions opt;
  opt.autoscale_y = false;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  const std::string chart = util::render_chart({s}, opt);
  // The outlier at y=5 is clipped, so the top label is the fixed bound.
  EXPECT_NE(chart.find("1.00"), std::string::npos);
  EXPECT_EQ(chart.find("5.00"), std::string::npos);
}

}  // namespace
