// Tests of the execution-engine layer: CommandStream sequencing
// invariants, cycle-accurate vs analytic backend parity across a
// geometry/mode grid, backend fault-capability enforcement, the detection
// cap, and the parallel CampaignRunner's bit-identical agreement with the
// serial path.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/fault_campaign.h"
#include "core/session.h"
#include "core/sweep.h"
#include "engine/analytic_backend.h"
#include "engine/command_stream.h"
#include "engine/cycle_accurate_backend.h"
#include "engine/parallel.h"
#include "faults/models.h"
#include "march/algorithms.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using engine::CommandStream;
using engine::StreamOptions;
using engine::StreamStep;
using sram::Mode;

SessionConfig make_config(Mode mode, std::size_t rows, std::size_t cols,
                          std::size_t word_width = 1) {
  SessionConfig cfg;
  cfg.geometry = {rows, cols, word_width};
  cfg.mode = mode;
  return cfg;
}

// --- CommandStream sequencing -----------------------------------------------

TEST(CommandStream, YieldsOneCyclePerOperationPerAddress) {
  const auto order = march::AddressOrder::word_line_after_word_line(4, 8);
  CommandStream stream(march::algorithms::march_c_minus(), order, {});
  std::uint64_t cycles = 0;
  while (stream.next()) ++cycles;
  EXPECT_EQ(cycles, 10u * 32u);  // 10 ops x 32 addresses
  EXPECT_EQ(stream.total_cycles(), 10u * 32u);
  EXPECT_TRUE(stream.done());
}

TEST(CommandStream, RestoreOnlyOnLastOpBeforeRowChange) {
  const std::size_t rows = 4, cols = 8;
  const auto order = march::AddressOrder::word_line_after_word_line(rows, cols);
  StreamOptions opt;
  opt.low_power = true;
  CommandStream stream(march::algorithms::march_c_minus(), order, opt);

  std::uint64_t restores = 0;
  std::optional<std::size_t> prev_row;
  std::uint64_t transitions = 0;
  bool prev_restore = false;
  while (const auto step = stream.next()) {
    ASSERT_EQ(step->kind, StreamStep::Kind::kCycle);
    const auto& cmd = step->command;
    if (prev_row && *prev_row != cmd.row) {
      ++transitions;
      // Every row hand-over must have been announced by a restore cycle.
      EXPECT_TRUE(prev_restore);
    }
    if (cmd.restore_row_transition) ++restores;
    prev_row = cmd.row;
    prev_restore = cmd.restore_row_transition;
  }
  EXPECT_GT(restores, 0u);
  EXPECT_EQ(restores, transitions);
}

TEST(CommandStream, FunctionalScheduleNeverRestores) {
  const auto order = march::AddressOrder::word_line_after_word_line(4, 8);
  CommandStream stream(march::algorithms::march_c_minus(), order, {});
  while (const auto step = stream.next())
    EXPECT_FALSE(step->command.restore_row_transition);
}

TEST(CommandStream, PauseElementsSurfaceAsIdleBlocks) {
  const auto order = march::AddressOrder::word_line_after_word_line(2, 4);
  StreamOptions opt;
  opt.low_power = true;
  CommandStream stream(march::algorithms::march_g_with_delays(), order, opt);
  std::uint64_t idle = 0, cycles = 0;
  bool restore_before_pause = false;
  bool prev_restore = false;
  while (const auto step = stream.next()) {
    if (step->kind == StreamStep::Kind::kIdle) {
      idle += step->idle_cycles;
      // Bit-lines must not sit discharged through an idle window.
      if (prev_restore) restore_before_pause = true;
    } else {
      ++cycles;
      prev_restore = step->command.restore_row_transition;
    }
  }
  EXPECT_EQ(idle, 2u * march::kDefaultPauseCycles);
  EXPECT_EQ(cycles, 23u * 8u);
  EXPECT_TRUE(restore_before_pause);
  EXPECT_EQ(stream.total_cycles(), idle + cycles);
}

TEST(CommandStream, ResetRewindsToFirstStep) {
  const auto order = march::AddressOrder::word_line_after_word_line(2, 4);
  CommandStream stream(march::algorithms::mats_plus(), order, {});
  const StreamStep first = *stream.peek();
  stream.next();
  stream.next();
  stream.reset();
  ASSERT_NE(stream.peek(), nullptr);
  EXPECT_EQ(stream.peek()->command.row, first.command.row);
  EXPECT_EQ(stream.peek()->command.col_group, first.command.col_group);
  EXPECT_EQ(stream.peek()->element, first.element);
}

TEST(CommandStream, LowPowerScheduleRequiresWlawlOrder) {
  const auto order = march::AddressOrder::fast_row(4, 4);
  StreamOptions opt;
  opt.low_power = true;
  EXPECT_THROW(CommandStream(march::algorithms::mats(), order, opt), Error);
}

// --- backend parity -----------------------------------------------------------

// The §5 closed-form backend must agree with the cycle-accurate simulator
// on fault-free energy-per-cycle and PRR across a geometry/mode grid (the
// sim adds only partial-decay effects near row boundaries).
TEST(AnalyticBackend, ParityWithCycleAccurateAcrossGrid) {
  for (const auto& test :
       {march::algorithms::mats_plus(), march::algorithms::march_c_minus()}) {
    for (const std::size_t rows : {8u, 16u}) {
      for (const std::size_t cols : {32u, 64u, 128u}) {
        SessionConfig cfg = make_config(Mode::kFunctional, rows, cols);
        const auto sim = TestSession::compare_modes(cfg, test);
        const auto ana = TestSession::compare_modes_analytic(cfg, test);
        const std::string where =
            test.name() + " " + std::to_string(rows) + "x" +
            std::to_string(cols);

        EXPECT_EQ(ana.functional.cycles, sim.functional.cycles) << where;
        EXPECT_EQ(ana.low_power.cycles, sim.low_power.cycles) << where;
        EXPECT_NEAR(ana.functional.energy_per_cycle_j,
                    sim.functional.energy_per_cycle_j,
                    1e-3 * sim.functional.energy_per_cycle_j)
            << where;
        EXPECT_NEAR(ana.low_power.energy_per_cycle_j,
                    sim.low_power.energy_per_cycle_j,
                    2e-2 * sim.low_power.energy_per_cycle_j)
            << where;
        EXPECT_NEAR(ana.prr, sim.prr, 0.02) << where;
      }
    }
  }
}

// The closed-form per-element expectation (AnalyticBackend's trace) must
// tie out against the measured per-element attribution of a traced
// cycle-accurate run: identical cycle boundaries, energies within the
// model's usual accuracy.
TEST(AnalyticBackend, PerElementTraceParityWithCycleAccurate) {
  SessionConfig cfg = make_config(Mode::kFunctional, 16, 64);
  cfg.trace = power::TraceConfig{.window_cycles = 64};
  const auto test = march::algorithms::march_c_minus();
  const auto sim = TestSession::compare_modes(cfg, test);
  const auto ana = TestSession::compare_modes_analytic(cfg, test);

  const auto compare_leg = [&](const core::SessionResult& s,
                               const core::SessionResult& a,
                               double tolerance, const std::string& where) {
    ASSERT_TRUE(s.trace.has_value()) << where;
    ASSERT_TRUE(a.trace.has_value()) << where;
    ASSERT_EQ(a.trace->elements.size(), s.trace->elements.size()) << where;
    ASSERT_EQ(a.trace->elements.size(), test.elements().size()) << where;
    for (std::size_t e = 0; e < s.trace->elements.size(); ++e) {
      const auto& se = s.trace->elements[e];
      const auto& ae = a.trace->elements[e];
      EXPECT_EQ(ae.element, se.element) << where << " element " << e;
      EXPECT_EQ(ae.start_cycle, se.start_cycle) << where << " element " << e;
      EXPECT_EQ(ae.cycles, se.cycles) << where << " element " << e;
      EXPECT_NEAR(ae.supply_energy_j, se.supply_energy_j,
                  tolerance * se.supply_energy_j)
          << where << " element " << e;
    }
    EXPECT_EQ(a.trace->total_cycles, s.trace->total_cycles) << where;
  };
  // Per-element rates separate the read/write op mixes the whole-run
  // averages blur, so the functional legs agree tightly; the LP legs add
  // the same decay second-order effects as the aggregate parity above.
  compare_leg(sim.functional, ana.functional, 1e-2, "functional");
  compare_leg(sim.low_power, ana.low_power, 5e-2, "low power");
}

TEST(AnalyticBackend, WordOrientedParity) {
  SessionConfig cfg = make_config(Mode::kFunctional, 8, 128, 4);
  const auto test = march::algorithms::march_c_minus();
  const auto sim = TestSession::compare_modes(cfg, test);
  const auto ana = TestSession::compare_modes_analytic(cfg, test);
  EXPECT_NEAR(ana.functional.energy_per_cycle_j,
              sim.functional.energy_per_cycle_j,
              1e-3 * sim.functional.energy_per_cycle_j);
  EXPECT_NEAR(ana.prr, sim.prr, 0.03);
}

TEST(AnalyticBackend, AccountsForPauseCycles) {
  SessionConfig cfg = make_config(Mode::kLowPowerTest, 4, 8);
  const auto test = march::algorithms::march_g_with_delays();

  TestSession sim_session(cfg);
  const auto sim = sim_session.run(test);

  TestSession ana_session(cfg);
  engine::AnalyticBackend backend(cfg.tech, cfg.geometry);
  const auto ana = ana_session.run(test, backend);

  EXPECT_EQ(ana.cycles, sim.cycles);
  // Idle cycles burn only clock + control energy in both backends.
  EXPECT_NEAR(ana.supply_energy_j, sim.supply_energy_j,
              2e-2 * sim.supply_energy_j);
}

// Disabling the Fig. 7 restore changes the energy (and triggers faulty
// swaps) in ways the closed form does not model — the backend must refuse
// rather than silently overstate PLPT.
TEST(AnalyticBackend, RefusesRestoreDisabledLowPowerRuns) {
  SessionConfig cfg = make_config(Mode::kLowPowerTest, 8, 8);
  cfg.row_transition_restore = false;
  TestSession session(cfg);
  engine::AnalyticBackend backend(cfg.tech, cfg.geometry);
  EXPECT_THROW(session.run(march::algorithms::mats_plus(), backend), Error);
  // Functional mode never restores; the flag is irrelevant there.
  SessionConfig fcfg = make_config(Mode::kFunctional, 8, 8);
  fcfg.row_transition_restore = false;
  TestSession fsession(fcfg);
  const auto r = fsession.run(march::algorithms::mats_plus(), backend);
  EXPECT_GT(r.supply_energy_j, 0.0);
}

TEST(AnalyticBackend, RefusesSessionsWithFaultModels) {
  SessionConfig cfg = make_config(Mode::kFunctional, 8, 8);
  TestSession session(cfg);
  faults::FaultSet set({faults::FaultSpec{
      .kind = faults::FaultKind::kStuckAt1, .victim = {2, 3}, .aggressor = {}}});
  session.attach_fault_model(&set);
  engine::AnalyticBackend backend(cfg.tech, cfg.geometry);
  EXPECT_THROW(session.run(march::algorithms::march_c_minus(), backend),
               Error);
  // Detaching the model re-enables the fast path.
  session.attach_fault_model(nullptr);
  const auto r = session.run(march::algorithms::march_c_minus(), backend);
  EXPECT_EQ(r.mismatches, 0u);
}

// --- detections ---------------------------------------------------------------

TEST(CycleAccurateBackend, DetectionCapIsHonoured) {
  SessionConfig cfg = make_config(Mode::kFunctional, 8, 8);
  TestSession session(cfg);
  // A full row of stuck-at faults produces far more than the cap.
  std::vector<faults::FaultSpec> specs;
  for (std::size_t col = 0; col < 8; ++col) {
    specs.push_back(faults::FaultSpec{.kind = faults::FaultKind::kStuckAt1,
                                      .victim = {1, col},
                                      .aggressor = {}});
    specs.push_back(faults::FaultSpec{.kind = faults::FaultKind::kStuckAt1,
                                      .victim = {3, col},
                                      .aggressor = {}});
  }
  faults::FaultSet set(specs);
  session.attach_fault_model(&set);
  const auto r = session.run(march::algorithms::march_c_minus());
  EXPECT_GT(r.mismatches, core::kMaxFirstDetections);
  EXPECT_EQ(r.first_detections.size(), core::kMaxFirstDetections);
}

// --- campaign runner ----------------------------------------------------------

TEST(CampaignRunner, ParallelReportBitIdenticalToSerial) {
  SessionConfig cfg = make_config(Mode::kFunctional, 8, 8);
  const auto test = march::algorithms::march_c_minus();
  const auto faults = faults::standard_fault_library(cfg.geometry);
  ASSERT_GT(faults.size(), 4u);

  const auto serial =
      core::CampaignRunner(core::CampaignRunner::Options{1}).run(cfg, test,
                                                                 faults);
  const auto parallel =
      core::CampaignRunner(core::CampaignRunner::Options{4}).run(cfg, test,
                                                                 faults);

  ASSERT_EQ(serial.entries.size(), parallel.entries.size());
  for (std::size_t i = 0; i < serial.entries.size(); ++i) {
    const auto& s = serial.entries[i];
    const auto& p = parallel.entries[i];
    EXPECT_EQ(s.spec.kind, p.spec.kind) << i;
    EXPECT_EQ(s.spec.victim.row, p.spec.victim.row) << i;
    EXPECT_EQ(s.spec.victim.col, p.spec.victim.col) << i;
    EXPECT_EQ(s.detected_functional, p.detected_functional) << i;
    EXPECT_EQ(s.detected_low_power, p.detected_low_power) << i;
    EXPECT_EQ(s.mismatches_functional, p.mismatches_functional) << i;
    EXPECT_EQ(s.mismatches_low_power, p.mismatches_low_power) << i;
  }
  EXPECT_EQ(serial.detected_functional(), parallel.detected_functional());
  EXPECT_EQ(serial.detected_low_power(), parallel.detected_low_power());
  EXPECT_EQ(serial.modes_agree(), parallel.modes_agree());
}

// run_subset computes exactly the entries a whole-library run() fills into
// the chosen slots — the property the distributed worker stands on.
TEST(CampaignRunner, RunSubsetMatchesWholeLibrarySlots) {
  SessionConfig cfg = make_config(Mode::kFunctional, 8, 8);
  const auto test = march::algorithms::march_c_minus();
  const auto faults = faults::standard_fault_library(cfg.geometry);
  const core::CampaignRunner runner;
  const auto whole = runner.run(cfg, test, faults);
  const std::vector<std::size_t> subset = {faults.size() - 1, 0, 3};
  const auto entries = runner.run_subset(cfg, test, faults, subset);
  ASSERT_EQ(entries.size(), subset.size());
  for (std::size_t j = 0; j < subset.size(); ++j) {
    const auto& a = entries[j];
    const auto& b = whole.entries[subset[j]];
    EXPECT_EQ(a.spec.kind, b.spec.kind) << j;
    EXPECT_TRUE(a.spec.victim == b.spec.victim) << j;
    EXPECT_EQ(a.detected_functional, b.detected_functional) << j;
    EXPECT_EQ(a.detected_low_power, b.detected_low_power) << j;
    EXPECT_EQ(a.mismatches_functional, b.mismatches_functional) << j;
    EXPECT_EQ(a.mismatches_low_power, b.mismatches_low_power) << j;
  }
  EXPECT_THROW(runner.run_subset(cfg, test, faults, {faults.size()}), Error);
}

TEST(CampaignRunner, MatchesLegacyEntryPoint) {
  SessionConfig cfg = make_config(Mode::kFunctional, 4, 8);
  const auto test = march::algorithms::mats_plus();
  std::vector<faults::FaultSpec> faults = {
      faults::FaultSpec{.kind = faults::FaultKind::kStuckAt0,
                        .victim = {1, 2},
                        .aggressor = {}},
      faults::FaultSpec{.kind = faults::FaultKind::kStuckAt1,
                        .victim = {3, 5},
                        .aggressor = {}},
  };
  const auto a = core::run_fault_campaign(cfg, test, faults);
  const auto b =
      core::CampaignRunner(core::CampaignRunner::Options{2}).run(cfg, test,
                                                                 faults);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].detected_functional,
              b.entries[i].detected_functional);
    EXPECT_EQ(a.entries[i].mismatches_functional,
              b.entries[i].mismatches_functional);
  }
}

// --- parallel_for edge cases --------------------------------------------------

TEST(ParallelFor, ResolveThreadCountNeverReturnsZero) {
  // A hardware_concurrency() == 0 host resolves "0 = one per hardware
  // thread" to 1 instead of 0; the explicit-count path clamps the same way.
  EXPECT_GE(engine::resolve_thread_count(0, 100), 1u);
  EXPECT_EQ(engine::resolve_thread_count(1, 100), 1u);
  // Never more workers than jobs...
  EXPECT_EQ(engine::resolve_thread_count(8, 3), 3u);
  EXPECT_EQ(engine::resolve_thread_count(8, 1), 1u);
  // ...and zero jobs still resolves to one worker, not zero (both for an
  // explicit request and for the hardware default).
  EXPECT_EQ(engine::resolve_thread_count(5, 0), 1u);
  EXPECT_EQ(engine::resolve_thread_count(0, 0), 1u);
}

TEST(ParallelFor, FirstExceptionIsRethrownOnTheCaller) {
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      engine::parallel_for(64, 4,
                           [&](std::size_t i) {
                             executed.fetch_add(1);
                             if (i == 5) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  EXPECT_GE(executed.load(), 1u);
}

TEST(ParallelFor, ExceptionCancelsRemainingWork) {
  // The failure flag stops workers from pulling new indices: with far more
  // jobs than threads, most of the queue must never run once job 0 throws.
  const std::size_t jobs = 100000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(engine::parallel_for(jobs, 4,
                                    [&](std::size_t i) {
                                      executed.fetch_add(1);
                                      if (i == 0) throw Error("cancel");
                                    }),
               Error);
  EXPECT_LT(executed.load(), jobs);
}

TEST(ParallelFor, SerialPathAlsoCancelsAndRethrows) {
  std::size_t executed = 0;
  EXPECT_THROW(engine::parallel_for(100, 1,
                                    [&](std::size_t i) {
                                      ++executed;
                                      if (i == 3) throw Error("stop");
                                    }),
               Error);
  EXPECT_EQ(executed, 4u);
}

// The grid guarantee at an awkward size: a ragged grid built around the
// 33x17 geometry (point count not divisible by the worker count) comes out
// bit-identical at threads = 1 and threads = 8, every field.
TEST(ParallelFor, SweepResultsBitIdenticalAcrossThreadCounts) {
  core::SweepGrid grid;
  grid.geometries = {{33, 17, 1}, {17, 33, 1}, {9, 40, 1}};
  grid.backgrounds = {sram::DataBackground::solid0(),
                      sram::DataBackground::row_stripes()};
  grid.algorithms = {march::algorithms::mats_plus(),
                     march::algorithms::march_c_minus()};
  // Cycle-accurate everywhere so the comparison covers the simulator, not
  // just the closed form.
  const auto serial =
      core::SweepRunner({1, core::BackendChoice::kCycleAccurate}).run(grid);
  const auto parallel =
      core::SweepRunner({8, core::BackendChoice::kCycleAccurate}).run(grid);
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(serial[i].index, parallel[i].index) << i;
    EXPECT_EQ(serial[i].backend, parallel[i].backend) << i;
    EXPECT_EQ(serial[i].prr.prr, parallel[i].prr.prr) << i;
    const auto expect_identical = [i](const core::SessionResult& a,
                                      const core::SessionResult& b) {
      EXPECT_EQ(a.cycles, b.cycles) << i;
      EXPECT_EQ(a.supply_energy_j, b.supply_energy_j) << i;
      EXPECT_EQ(a.energy_per_cycle_j, b.energy_per_cycle_j) << i;
      EXPECT_EQ(a.mismatches, b.mismatches) << i;
      for (std::size_t s = 0; s < power::kEnergySourceCount; ++s) {
        const auto source = static_cast<power::EnergySource>(s);
        EXPECT_EQ(a.meter.total(source), b.meter.total(source))
            << i << " source " << power::to_string(source);
      }
    };
    expect_identical(serial[i].prr.functional, parallel[i].prr.functional);
    expect_identical(serial[i].prr.low_power, parallel[i].prr.low_power);
  }
}

// --- session/backend integration ---------------------------------------------

// The session's default path and an explicitly constructed cycle-accurate
// backend over the same array are the same thing.
TEST(CycleAccurateBackend, ExplicitBackendMatchesDefaultRun) {
  const auto test = march::algorithms::march_sr();
  SessionConfig cfg = make_config(Mode::kLowPowerTest, 8, 8);

  TestSession a(cfg);
  const auto ra = a.run(test);

  TestSession b(cfg);
  engine::CycleAccurateBackend backend(b.array());
  const auto rb = b.run(test, backend);

  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_DOUBLE_EQ(ra.supply_energy_j, rb.supply_energy_j);
  EXPECT_EQ(ra.stats.restore_cycles, rb.stats.restore_cycles);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_EQ(a.array().peek(r, c), b.array().peek(r, c));
}

}  // namespace
