// The io/ layer: the self-contained JSON document model (emit + parse,
// exact number round-trips) and the domain-type serializers the
// distributed subsystem stands on.  The non-negotiable property throughout
// is bit-exactness: a double or uint64 surviving dump() -> parse() must
// come back identical to the bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "io/json.h"
#include "io/serialize.h"
#include "march/algorithms.h"
#include "power/report.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using io::JsonValue;

// --- JsonValue basics --------------------------------------------------------

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(JsonValue::parse("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("42").as_uint(), 42u);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5").as_double(), -1.5);
}

TEST(Json, ExactDoubleRoundTrip) {
  // Doubles that decimal shorthand mangles: 17 significant digits must
  // bring every one back bit-identical.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           6.02214076e23,
                           3e-9 * 1.6 * 1.6,
                           -2.2250738585072014e-308,  // smallest normal
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           0.0};
  for (const double v : values) {
    const std::string text = JsonValue::number(v).dump();
    const double back = JsonValue::parse(text).as_double();
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << text;
    EXPECT_EQ(back, v) << text;
  }
}

TEST(Json, ExactUint64RoundTrip) {
  // 2^53 + 1 is where the double lane starts lying; the unsigned lane must
  // carry it (and UINT64_MAX) untruncated.
  const std::uint64_t values[] = {0, 1, (1ull << 53) + 1,
                                  0xFFFFFFFFFFFFFFFFull};
  for (const std::uint64_t v : values) {
    const std::string text = JsonValue::integer(v).dump();
    EXPECT_EQ(JsonValue::parse(text).as_uint(), v) << text;
  }
  // A fractional number refuses the exact lane instead of truncating.
  EXPECT_THROW(JsonValue::parse("1.5").as_uint(), Error);
  EXPECT_THROW(JsonValue::parse("-3").as_uint(), Error);
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW(JsonValue::number(std::numeric_limits<double>::infinity()),
               Error);
  EXPECT_THROW(JsonValue::number(std::nan("")), Error);
}

TEST(Json, StringEscapes) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const std::string text = JsonValue::string(nasty).dump();
  EXPECT_EQ(JsonValue::parse(text).as_string(), nasty);
  EXPECT_EQ(JsonValue::parse("\"\\u0041\\u00e9\"").as_string(), "A\xC3\xA9");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwrite) {
  JsonValue obj = JsonValue::object();
  obj.set("z", JsonValue::integer(1));
  obj.set("a", JsonValue::integer(2));
  obj.set("z", JsonValue::integer(3));  // overwrite keeps position
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
  EXPECT_EQ(obj.at("z").as_uint(), 3u);
  EXPECT_TRUE(obj.get("missing").is_null());
  EXPECT_THROW(obj.at("missing"), Error);
}

TEST(Json, NestedDocumentRoundTrip) {
  const std::string text =
      "{\"a\":[1,2,{\"b\":true}],\"c\":{\"d\":null,\"e\":[\"x\"]}}";
  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(v.at("a").at(2).at("b").as_bool(), true);
  // Pretty-printed output parses back to the same document.
  EXPECT_EQ(JsonValue::parse(v.dump(2)).dump(), text);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("[1,]"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse("nul"), Error);
  EXPECT_THROW(JsonValue::parse("1e999"), Error);
}

// Regression for a fuzz_json finding: the recursive-descent parser had no
// nesting cap, so a wire frame of a few thousand '[' bytes chose our
// stack depth and crashed the daemon.  Deep input must throw a normal
// parse Error; nesting up to the 64-level cap still parses.
TEST(Json, DeepNestingIsRejectedNotACrash) {
  EXPECT_THROW(JsonValue::parse(std::string(100000, '[')), Error);
  EXPECT_THROW(JsonValue::parse(std::string(100, '[') + "1" +
                                std::string(100, ']')),
               Error);
  EXPECT_THROW(JsonValue::parse(std::string(100, '{')), Error);

  // At the cap: 64 nested empty arrays are fine (real documents top out
  // around 6 levels), and round-trip byte-stably.
  std::string at_cap = std::string(64, '[') + std::string(64, ']');
  EXPECT_EQ(JsonValue::parse(at_cap).dump(), at_cap);
}

// --- domain serializers ------------------------------------------------------

TEST(Serialize, GeometryRoundTrip) {
  const sram::Geometry g{33, 48, 4};
  const sram::Geometry back =
      io::geometry_from_json(JsonValue::parse(io::to_json(g).dump()));
  EXPECT_EQ(back, g);
  // Parsed geometries are validated, not trusted.
  JsonValue bad = io::to_json(g);
  bad.set("word_width", JsonValue::integer(5));  // 48 % 5 != 0
  EXPECT_THROW(io::geometry_from_json(bad), Error);
}

TEST(Serialize, BackgroundRoundTrip) {
  for (const auto kind : sram::DataBackground::kinds()) {
    const sram::DataBackground b{kind};
    EXPECT_EQ(io::background_from_json(io::to_json(b)), b);
  }
  EXPECT_THROW(io::background_from_json(JsonValue::string("plaid")), Error);
}

TEST(Serialize, MarchTestStructuralRoundTrip) {
  // March G with delays exercises directions, multi-op elements and pauses.
  const auto test = march::algorithms::march_g_with_delays();
  const auto back =
      io::march_from_json(JsonValue::parse(io::to_json(test).dump()));
  EXPECT_EQ(back.name(), test.name());
  EXPECT_EQ(back.str(), test.str());
  ASSERT_EQ(back.elements().size(), test.elements().size());
  for (std::size_t i = 0; i < test.elements().size(); ++i) {
    EXPECT_EQ(back.elements()[i].direction, test.elements()[i].direction);
    EXPECT_EQ(back.elements()[i].ops, test.elements()[i].ops);
    EXPECT_EQ(back.elements()[i].pause_cycles,
              test.elements()[i].pause_cycles);
  }
}

TEST(Serialize, MarchTestByBareName) {
  JsonValue ref = JsonValue::object();
  ref.set("name", JsonValue::string("March C-"));
  const auto test = io::march_from_json(ref);
  EXPECT_EQ(test.str(), march::algorithms::march_c_minus().str());
  ref.set("name", JsonValue::string("March Nonesuch"));
  EXPECT_THROW(io::march_from_json(ref), Error);
}

TEST(Serialize, TechnologyRoundTripIsExact) {
  power::TechnologyParams tech;
  tech.vdd = 1.1;
  tech.c_bitline = 287.5e-15;
  tech.decay_tau_cycles = 2.7182818284590452;
  const auto back = io::technology_from_json(
      JsonValue::parse(io::to_json(tech).dump()));
  EXPECT_EQ(back.vdd, tech.vdd);
  EXPECT_EQ(back.c_bitline, tech.c_bitline);
  EXPECT_EQ(back.decay_tau_cycles, tech.decay_tau_cycles);
  EXPECT_EQ(back.e_clock_tree, tech.e_clock_tree);
}

TEST(Serialize, MeterRoundTripIsExact) {
  power::EnergyMeter meter;
  meter.add(power::EnergySource::kPrechargeResFight, 1.0 / 3.0);
  meter.add(power::EnergySource::kClockTree, 6e-12, 12345);
  meter.tick_cycles(999);
  const auto back =
      io::meter_from_json(JsonValue::parse(io::to_json(meter).dump()));
  EXPECT_EQ(back.cycles(), meter.cycles());
  for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
    const auto source = static_cast<power::EnergySource>(i);
    EXPECT_EQ(back.total(source), meter.total(source))
        << power::to_string(source);
  }
  EXPECT_EQ(back.supply_total(), meter.supply_total());
}

TEST(Serialize, FaultSpecRoundTripAllKinds) {
  const auto library = faults::standard_fault_library({16, 16, 1}, 3);
  for (const auto& spec : library) {
    const auto back =
        io::fault_spec_from_json(JsonValue::parse(io::to_json(spec).dump()));
    EXPECT_EQ(back.kind, spec.kind);
    EXPECT_EQ(back.victim, spec.victim);
    if (faults::is_coupling(spec.kind)) {
      EXPECT_EQ(back.aggressor, spec.aggressor);
      EXPECT_EQ(back.aggressor_up, spec.aggressor_up);
      EXPECT_EQ(back.aggressor_state, spec.aggressor_state);
    }
    EXPECT_EQ(back.forced_value, spec.forced_value);
    EXPECT_EQ(back.res_threshold, spec.res_threshold);
    EXPECT_EQ(back.retention_idle_cycles, spec.retention_idle_cycles);
  }
}

TEST(Serialize, SessionConfigRoundTripDrivesIdenticalRuns) {
  core::SessionConfig config;
  config.geometry = {8, 32, 1};
  config.mode = sram::Mode::kLowPowerTest;
  config.background = sram::DataBackground::checkerboard();
  config.invert_background = true;
  config.wordline_duty = 0.375;
  config.tech.vdd = 1.45;
  const auto back = io::session_config_from_json(
      JsonValue::parse(io::to_json(config).dump()));
  // The proof that matters: both configs run to bit-identical results.
  const auto test = march::algorithms::march_c_minus();
  const auto a = core::TestSession::compare_modes(config, test);
  const auto b = core::TestSession::compare_modes(back, test);
  EXPECT_EQ(a.prr, b.prr);
  EXPECT_EQ(a.functional.supply_energy_j, b.functional.supply_energy_j);
  EXPECT_EQ(a.low_power.supply_energy_j, b.low_power.supply_energy_j);
  EXPECT_EQ(a.low_power.cycles, b.low_power.cycles);
}

TEST(Serialize, SessionConfigCustomOrderRoundTripsBySequence) {
  core::SessionConfig config;
  config.geometry = {4, 4, 1};
  config.order = march::AddressOrder::pseudo_random(4, 4, 99);
  const auto back = io::session_config_from_json(
      JsonValue::parse(io::to_json(config).dump()));
  ASSERT_TRUE(back.order.has_value());
  EXPECT_EQ(back.order->sequence(), config.order->sequence());
  // An unset order stays unset.
  config.order.reset();
  const auto bare = io::session_config_from_json(
      JsonValue::parse(io::to_json(config).dump()));
  EXPECT_FALSE(bare.order.has_value());
}

TEST(Serialize, SweepGridRoundTrip) {
  core::SweepGrid grid;
  grid.geometries = {{8, 16, 1}, {4, 32, 2}};
  grid.backgrounds = {sram::DataBackground::solid1(),
                      sram::DataBackground::column_stripes()};
  grid.algorithms = {march::algorithms::mats_plus(),
                     march::algorithms::march_g_with_delays()};
  grid.base.row_transition_restore = false;
  const auto back =
      io::sweep_grid_from_json(JsonValue::parse(io::to_json(grid).dump()));
  EXPECT_EQ(back.size(), grid.size());
  EXPECT_EQ(back.geometries, grid.geometries);
  EXPECT_EQ(back.backgrounds.size(), grid.backgrounds.size());
  EXPECT_EQ(back.algorithms[1].str(), grid.algorithms[1].str());
  EXPECT_FALSE(back.base.row_transition_restore);
}

TEST(Serialize, SessionResultAndPrrRoundTripExactly) {
  core::SessionConfig config;
  config.geometry = {8, 16, 1};
  faults::FaultSet set({faults::FaultSpec{
      .kind = faults::FaultKind::kStuckAt1, .victim = {2, 3}, .aggressor = {}}});
  const auto cmp = core::TestSession::compare_modes(
      config, march::algorithms::march_c_minus(), &set);
  const auto back = io::prr_comparison_from_json(
      JsonValue::parse(io::to_json(cmp).dump()));
  EXPECT_EQ(back.prr, cmp.prr);
  EXPECT_EQ(back.functional.algorithm, cmp.functional.algorithm);
  EXPECT_EQ(back.functional.mode, cmp.functional.mode);
  EXPECT_EQ(back.functional.cycles, cmp.functional.cycles);
  EXPECT_EQ(back.functional.supply_energy_j, cmp.functional.supply_energy_j);
  EXPECT_EQ(back.functional.mismatches, cmp.functional.mismatches);
  EXPECT_EQ(back.functional.stats.reads, cmp.functional.stats.reads);
  EXPECT_EQ(back.functional.stats.decay_stress_equiv_post_op,
            cmp.functional.stats.decay_stress_equiv_post_op);
  ASSERT_EQ(back.functional.first_detections.size(),
            cmp.functional.first_detections.size());
  for (std::size_t i = 0; i < cmp.functional.first_detections.size(); ++i) {
    EXPECT_EQ(back.functional.first_detections[i].row,
              cmp.functional.first_detections[i].row);
    EXPECT_EQ(back.functional.first_detections[i].col,
              cmp.functional.first_detections[i].col);
  }
  for (std::size_t s = 0; s < power::kEnergySourceCount; ++s) {
    const auto source = static_cast<power::EnergySource>(s);
    EXPECT_EQ(back.low_power.meter.total(source),
              cmp.low_power.meter.total(source));
  }
}

TEST(Serialize, TraceSummaryRoundTripIsExact) {
  core::SessionConfig config;
  config.geometry = {8, 16, 1};
  config.mode = sram::Mode::kLowPowerTest;
  config.trace = power::TraceConfig{.window_cycles = 16, .keep_windows = true};
  core::TestSession session(config);
  const auto result = session.run(march::algorithms::march_c_minus());
  ASSERT_TRUE(result.trace.has_value());
  const power::TraceSummary& trace = *result.trace;

  const auto back = io::trace_summary_from_json(
      JsonValue::parse(io::to_json(trace).dump()));
  EXPECT_EQ(back.window_cycles, trace.window_cycles);
  EXPECT_EQ(back.total_cycles, trace.total_cycles);
  EXPECT_EQ(back.windows, trace.windows);
  EXPECT_EQ(back.peak_window, trace.peak_window);
  EXPECT_EQ(back.peak_window_energy_j, trace.peak_window_energy_j);
  EXPECT_EQ(back.peak_power_w, trace.peak_power_w);
  EXPECT_EQ(back.supply_energy_j, trace.supply_energy_j);
  EXPECT_EQ(back.average_power_w, trace.average_power_w);
  ASSERT_EQ(back.elements.size(), trace.elements.size());
  for (std::size_t e = 0; e < trace.elements.size(); ++e) {
    EXPECT_EQ(back.elements[e].element, trace.elements[e].element);
    EXPECT_EQ(back.elements[e].start_cycle, trace.elements[e].start_cycle);
    EXPECT_EQ(back.elements[e].cycles, trace.elements[e].cycles);
    EXPECT_EQ(back.elements[e].supply_energy_j,
              trace.elements[e].supply_energy_j);
    EXPECT_EQ(back.elements[e].precharge_energy_j,
              trace.elements[e].precharge_energy_j);
  }
  EXPECT_EQ(back.window_supply_j, trace.window_supply_j);

  // The emitted document is byte-stable through a parse cycle — the
  // property the dist/ merge diff stands on.
  EXPECT_EQ(io::to_json(back).dump(),
            io::to_json(trace).dump());
}

TEST(Serialize, SessionResultCarriesTheTrace) {
  core::SessionConfig config;
  config.geometry = {4, 8, 1};
  config.trace = power::TraceConfig{.window_cycles = 8};
  core::TestSession session(config);
  const auto result = session.run(march::algorithms::mats_plus());
  ASSERT_TRUE(result.trace.has_value());
  const auto back = io::session_result_from_json(
      JsonValue::parse(io::to_json(result).dump()));
  ASSERT_TRUE(back.trace.has_value());
  EXPECT_EQ(back.trace->peak_window_energy_j,
            result.trace->peak_window_energy_j);
  EXPECT_EQ(io::to_json(back).dump(), io::to_json(result).dump());

  // An untraced result stays trace-free through the round trip.
  core::SessionConfig bare = config;
  bare.trace.reset();
  const auto untraced =
      core::TestSession(bare).run(march::algorithms::mats_plus());
  const auto untraced_back = io::session_result_from_json(
      JsonValue::parse(io::to_json(untraced).dump()));
  EXPECT_FALSE(untraced_back.trace.has_value());
}

TEST(Serialize, SessionConfigTraceRoundTrips) {
  core::SessionConfig config;
  config.geometry = {4, 8, 1};
  config.trace = power::TraceConfig{.window_cycles = 96, .keep_windows = true};
  const auto back = io::session_config_from_json(
      JsonValue::parse(io::to_json(config).dump()));
  ASSERT_TRUE(back.trace.has_value());
  EXPECT_EQ(back.trace->window_cycles, 96u);
  EXPECT_TRUE(back.trace->keep_windows);
  config.trace.reset();
  const auto bare = io::session_config_from_json(
      JsonValue::parse(io::to_json(config).dump()));
  EXPECT_FALSE(bare.trace.has_value());
}

// --- power::to_json (report flavour) -----------------------------------------

TEST(PowerReport, JsonBreakdownMatchesMeter) {
  core::SessionConfig config;
  config.geometry = {8, 32, 1};
  config.mode = sram::Mode::kFunctional;
  core::TestSession session(config);
  const auto result = session.run(march::algorithms::mats_plus());
  const JsonValue report = power::to_json(result.meter);
  EXPECT_EQ(report.at("cycles").as_uint(), result.meter.cycles());
  EXPECT_EQ(report.at("supply_energy_j").as_double(),
            result.meter.supply_total());
  EXPECT_GT(report.at("breakdown").size(), 0u);
  double sum = 0.0;
  for (std::size_t i = 0; i < report.at("breakdown").size(); ++i) {
    const JsonValue& row = report.at("breakdown").at(i);
    if (row.at("supply_drawn").as_bool())
      sum += row.at("energy_j").as_double();
    EXPECT_FALSE(row.at("source").as_string().empty());
  }
  EXPECT_NEAR(sum, result.meter.supply_total(),
              1e-12 * result.meter.supply_total());
  // The report is valid JSON end to end.
  EXPECT_NO_THROW(JsonValue::parse(report.dump(2)));
}

}  // namespace
