// Unit tests for the power module: energy-source taxonomy, meter,
// technology parameters, and the paper's §5 analytic model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_reference.h"
#include "power/analytic.h"
#include "power/energy_source.h"
#include "power/meter.h"
#include "power/technology.h"
#include "util/error.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using power::EnergySource;

// --- energy source taxonomy ----------------------------------------------

TEST(EnergySource, EveryEntryHasInfo) {
  for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
    const auto s = static_cast<EnergySource>(i);
    EXPECT_NE(power::to_string(s), nullptr);
    EXPECT_GT(std::string(power::to_string(s)).size(), 0u);
  }
}

TEST(EnergySource, DecayStressIsNotSupplyDrawn) {
  EXPECT_FALSE(power::info(EnergySource::kBitlineDecayStress).supply_drawn);
  EXPECT_TRUE(power::info(EnergySource::kPrechargeResFight).supply_drawn);
}

TEST(EnergySource, PrechargeRelatedSetMatchesPaperTargets) {
  // The activity the paper reduces: RES fight, restores, follower recharge.
  for (EnergySource s :
       {EnergySource::kPrechargeResFight, EnergySource::kPrechargeRestoreRead,
        EnergySource::kPrechargeRestoreWrite,
        EnergySource::kPrechargeNextColumn,
        EnergySource::kRowTransitionRestore})
    EXPECT_TRUE(power::info(s).precharge_related) << power::to_string(s);
  for (EnergySource s :
       {EnergySource::kWordline, EnergySource::kDecoder,
        EnergySource::kSenseAmp, EnergySource::kLpTestDriver})
    EXPECT_FALSE(power::info(s).precharge_related) << power::to_string(s);
}

// --- meter ----------------------------------------------------------------

TEST(EnergyMeter, AccumulatesPerSource) {
  power::EnergyMeter m;
  m.add(EnergySource::kSenseAmp, 1e-12);
  m.add(EnergySource::kSenseAmp, 2e-12);
  m.add(EnergySource::kDecoder, 5e-12);
  EXPECT_DOUBLE_EQ(m.total(EnergySource::kSenseAmp), 3e-12);
  EXPECT_DOUBLE_EQ(m.total(EnergySource::kDecoder), 5e-12);
  EXPECT_DOUBLE_EQ(m.supply_total(), 8e-12);
}

TEST(EnergyMeter, SupplyExcludesStoredChargeStress) {
  power::EnergyMeter m;
  m.add(EnergySource::kBitlineDecayStress, 7e-12);
  m.add(EnergySource::kWordline, 1e-12);
  EXPECT_DOUBLE_EQ(m.supply_total(), 1e-12);
  EXPECT_DOUBLE_EQ(m.total(EnergySource::kBitlineDecayStress), 7e-12);
}

TEST(EnergyMeter, PrechargeTotalSelectsRelatedSources) {
  power::EnergyMeter m;
  m.add(EnergySource::kPrechargeResFight, 3e-12);
  m.add(EnergySource::kClockTree, 10e-12);
  EXPECT_DOUBLE_EQ(m.precharge_total(), 3e-12);
}

TEST(EnergyMeter, PerCycleAveraging) {
  power::EnergyMeter m;
  m.add(EnergySource::kClockTree, 6e-12);
  EXPECT_EQ(m.supply_per_cycle(), 0.0);  // no cycles yet
  m.tick_cycle();
  m.tick_cycle();
  EXPECT_DOUBLE_EQ(m.supply_per_cycle(), 3e-12);
  EXPECT_EQ(m.cycles(), 2u);
}

TEST(EnergyMeter, BreakdownSortedAndShared) {
  power::EnergyMeter m;
  m.add(EnergySource::kClockTree, 1e-12);
  m.add(EnergySource::kPrechargeResFight, 3e-12);
  const auto b = m.breakdown();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].source, EnergySource::kPrechargeResFight);
  EXPECT_DOUBLE_EQ(b[0].share, 0.75);
  EXPECT_DOUBLE_EQ(b[1].share, 0.25);
}

TEST(EnergyMeter, RejectsNegativeEnergy) {
  power::EnergyMeter m;
  EXPECT_THROW(m.add(EnergySource::kDecoder, -1.0), Error);
  EXPECT_THROW(m.add(EnergySource::kCount, 1.0), Error);
}

// The cohort-bulk metering of the bitsliced array path depends on this
// identity holding EXACTLY (same floating-point bits), not approximately:
// add(source, e, n) must equal n scalar add(source, e) calls.
TEST(EnergyMeter, BulkAddBitIdenticalToScalarAdds) {
  // 0.1 is a repeating fraction in binary: ten repeated additions land on
  // 0.9999999999999999, while 10 * 0.1 rounds to exactly 1.0 — so this
  // test distinguishes a faithful bulk add from a multiply-based one.
  for (const std::uint64_t n : {0ull, 1ull, 3ull, 10ull, 64ull, 65537ull}) {
    power::EnergyMeter scalar;
    for (std::uint64_t i = 0; i < n; ++i)
      scalar.add(EnergySource::kSenseAmp, 0.1);
    power::EnergyMeter bulk;
    bulk.add(EnergySource::kSenseAmp, 0.1, n);
    EXPECT_EQ(scalar.total(EnergySource::kSenseAmp),
              bulk.total(EnergySource::kSenseAmp))
        << "n=" << n;
  }
  power::EnergyMeter bulk10;
  bulk10.add(EnergySource::kSenseAmp, 0.1, 10);
  EXPECT_NE(bulk10.total(EnergySource::kSenseAmp), 10.0 * 0.1);
}

TEST(EnergyMeter, BulkAddChecksArgumentsLikeScalarAdd) {
  power::EnergyMeter m;
  EXPECT_THROW(m.add(EnergySource::kDecoder, -1.0, 4), Error);
  EXPECT_THROW(m.add(EnergySource::kCount, 1.0, 4), Error);
  m.add(EnergySource::kDecoder, 1.0, 0);  // zero count adds nothing
  EXPECT_EQ(m.total(EnergySource::kDecoder), 0.0);
}

TEST(EnergyMeter, TickCyclesMatchesRepeatedTicks) {
  power::EnergyMeter a, b;
  for (int i = 0; i < 7; ++i) a.tick_cycle();
  b.tick_cycles(7);
  EXPECT_EQ(a.cycles(), b.cycles());
}

TEST(EnergyMeter, ResetClearsEverything) {
  power::EnergyMeter m;
  m.add(EnergySource::kDecoder, 1e-12);
  m.tick_cycle();
  m.reset();
  EXPECT_EQ(m.supply_total(), 0.0);
  EXPECT_EQ(m.cycles(), 0u);
}

// --- technology ------------------------------------------------------------

TEST(Technology, DerivedEnergiesMatchClosedForms) {
  const auto t = power::TechnologyParams::tech_0p13um();
  EXPECT_DOUBLE_EQ(t.e_res_fight_per_cycle(),
                   t.vdd * t.res_fight_current * 0.5 * t.clock_period);
  EXPECT_DOUBLE_EQ(t.e_read_restore(), t.c_bitline * t.vdd * t.read_swing);
  EXPECT_DOUBLE_EQ(t.e_write_restore(), t.c_bitline * t.vdd * t.vdd);
  EXPECT_DOUBLE_EQ(t.e_wordline(512),
                   512.0 * t.c_wordline_per_column * t.vdd * t.vdd);
  EXPECT_DOUBLE_EQ(t.e_lptest_driver(512), t.e_wordline(512));
  EXPECT_DOUBLE_EQ(t.e_bitline_restore_from(t.vdd), 0.0);
  EXPECT_GT(t.e_bitline_restore_from(0.0), 0.0);
}

// Paper Fig. 6: the floating bit-line reaches logic 0 in ~9 cycles; with
// tau = 3 cycles and a 5 % threshold the closed form gives 3 ln 20 = 8.99.
TEST(Technology, DischargeTimeIsNearlyNineCycles) {
  const auto t = power::TechnologyParams::tech_0p13um();
  EXPECT_NEAR(t.cycles_to_discharge(), core::paper_claims::kDischargeCycles,
              0.5);
}

TEST(Technology, DecayIsExponential) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const double v3 = t.decayed_voltage(1.6, 3.0);
  EXPECT_NEAR(v3, 1.6 * std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(t.decayed_voltage(1.6, 0.0), 1.6);
  EXPECT_THROW(t.decayed_voltage(1.6, -1.0), Error);
}

// Paper §5 source 4: cell dissipation during RES is ~3 orders of magnitude
// below the pre-charge circuit's.
TEST(Technology, CellResThreeOrdersBelowPrecharge) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const double ratio = t.e_cell_res_dynamic() / t.e_res_fight_per_cycle();
  EXPECT_LT(ratio, 5e-3);
  EXPECT_GT(ratio, 1e-5);
}

// Paper §5 source 5: the control element load is ~3 orders below a bit-line.
TEST(Technology, ControlElementThreeOrdersBelowBitline) {
  const auto t = power::TechnologyParams::tech_0p13um();
  EXPECT_LT(t.c_control_element, 2e-3 * t.c_bitline);
}

TEST(Technology, ValidateRejectsBadParameters) {
  auto t = power::TechnologyParams::tech_0p13um();
  t.vdd = 0.0;
  EXPECT_THROW(t.validate(), Error);
  t = power::TechnologyParams::tech_0p13um();
  t.read_swing = 2.0;  // beyond the rail
  EXPECT_THROW(t.validate(), Error);
  t = power::TechnologyParams::tech_0p13um();
  t.discharged_threshold = 1.5;
  EXPECT_THROW(t.validate(), Error);
}

// --- analytic model ---------------------------------------------------------

power::AlgorithmCounts march_c_minus_counts() {
  return {"March C-", 6, 10, 5, 5};
}

TEST(AnalyticModel, CountsValidation) {
  power::AlgorithmCounts bad{"x", 1, 3, 1, 1};  // 1+1 != 3
  EXPECT_THROW(bad.validate(), Error);
  EXPECT_NO_THROW(march_c_minus_counts().validate());
}

TEST(AnalyticModel, PfIsReadWriteWeightedAverage) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const power::AnalyticModel m(t, 512, 512);
  const auto c = march_c_minus_counts();
  EXPECT_NEAR(m.pf(c), 0.5 * (m.pr() + m.pw()), 1e-18);
  EXPECT_GT(m.pw(), m.pr());  // paper: writes cost more than reads
}

// The paper's two worked examples for F(row transition): one-op elements
// see a transition every 512 cycles, four-op elements every 2048.
TEST(AnalyticModel, RowTransitionPeriodsMatchPaperExamples) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const power::AnalyticModel m(t, 512, 512);
  EXPECT_DOUBLE_EQ(m.row_transition_period_cycles(1),
                   core::paper_claims::kRowTransitionPeriod1op);
  EXPECT_DOUBLE_EQ(m.row_transition_period_cycles(4),
                   core::paper_claims::kRowTransitionPeriod4op);
}

TEST(AnalyticModel, PaperFormulaMatchesVerbatim) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const power::AnalyticModel m(t, 512, 512);
  const auto c = march_c_minus_counts();
  const double expected =
      m.pf(c) - (510.0 * m.p_a() - (6.0 / 10.0) * m.p_b());
  EXPECT_NEAR(m.plpt_paper(c), expected, 1e-18);
}

TEST(AnalyticModel, RefinedAndPaperFormulasAgreeClosely) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const power::AnalyticModel m(t, 512, 512);
  for (const auto& row : core::kTable1) {
    const power::AlgorithmCounts c{row.algorithm, row.elements,
                                   row.operations, row.reads, row.writes};
    // The second-order terms the paper neglects shift PRR by a few percent
    // at most.
    EXPECT_NEAR(m.prr(c), m.prr_paper(c), 0.06) << row.algorithm;
  }
}

// Regression against the paper's Table 1: every algorithm lands in the
// published 47-51 % band within ±2.5 points of its published value.
TEST(AnalyticModel, PrrMatchesTable1Band) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const power::AnalyticModel m(t, 512, 512);
  for (const auto& row : core::kTable1) {
    const power::AlgorithmCounts c{row.algorithm, row.elements,
                                   row.operations, row.reads, row.writes};
    EXPECT_NEAR(m.prr(c), row.prr, 0.025) << row.algorithm;
    EXPECT_GT(m.prr(c), 0.45) << row.algorithm;
    EXPECT_LT(m.prr(c), 0.55) << row.algorithm;
  }
}

// Paper §5: "the power dissipation reduction depends on the memory array
// organisation" — wider arrays save more.
TEST(AnalyticModel, SavingGrowsWithColumnCount) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const auto c = march_c_minus_counts();
  double last = 0.0;
  for (std::size_t cols : {64u, 128u, 256u, 512u, 1024u}) {
    const power::AnalyticModel m(t, 512, cols);
    const double prr = m.prr(c);
    EXPECT_GT(prr, last) << cols;
    last = prr;
  }
}

// Word-oriented generalisation (paper §6): wider words keep more pre-charge
// circuits busy, so the saving shrinks with word width.
TEST(AnalyticModel, PrrShrinksWithWordWidth) {
  const auto t = power::TechnologyParams::tech_0p13um();
  const auto c = march_c_minus_counts();
  double last = 1.0;
  for (std::size_t w : {1u, 2u, 4u, 8u, 16u}) {
    const power::AnalyticModel m(t, 512, 512, w);
    const double prr = m.prr(c);
    EXPECT_LT(prr, last) << w;
    last = prr;
  }
}

TEST(AnalyticModel, RejectsBadGeometry) {
  const auto t = power::TechnologyParams::tech_0p13um();
  EXPECT_THROW(power::AnalyticModel(t, 0, 512), Error);
  EXPECT_THROW(power::AnalyticModel(t, 512, 512, 3), Error);   // 512 % 3 != 0
  EXPECT_THROW(power::AnalyticModel(t, 512, 4, 4), Error);     // < 2 groups
}

}  // namespace
