// Property tests for the word-oriented extension (paper §6 future work),
// parameterised over word widths: correctness equivalence across modes,
// pre-charge activity, BIST equivalence, background interaction, and the
// generalised power model.
#include <gtest/gtest.h>

#include "core/bist.h"
#include "core/fault_campaign.h"
#include "core/session.h"
#include "faults/models.h"
#include "march/algorithms.h"
#include "march/parser.h"
#include "power/analytic.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using sram::DataBackground;
using sram::Mode;

class WordWidth : public ::testing::TestWithParam<std::size_t> {};

constexpr std::size_t kRows = 8;
constexpr std::size_t kCols = 32;

SessionConfig config(std::size_t width, Mode mode) {
  SessionConfig cfg;
  cfg.geometry = {kRows, kCols, width};
  cfg.mode = mode;
  return cfg;
}

TEST_P(WordWidth, ModesLeaveIdenticalContentsAndPass) {
  const std::size_t w = GetParam();
  TestSession functional(config(w, Mode::kFunctional));
  TestSession low_power(config(w, Mode::kLowPowerTest));
  const auto f = functional.run(march::algorithms::march_c_minus());
  const auto l = low_power.run(march::algorithms::march_c_minus());
  EXPECT_EQ(f.mismatches, 0u);
  EXPECT_EQ(l.mismatches, 0u);
  EXPECT_EQ(l.stats.faulty_swaps, 0u);
  for (std::size_t r = 0; r < kRows; ++r)
    for (std::size_t c = 0; c < kCols; ++c)
      EXPECT_EQ(functional.array().peek(r, c), low_power.array().peek(r, c));
}

// LP mode pre-charges exactly the selected and the follower word group.
TEST_P(WordWidth, LpActivityIsTwoWordGroups) {
  const std::size_t w = GetParam();
  sram::SramConfig cfg;
  cfg.geometry = {kRows, kCols, w};
  cfg.mode = Mode::kLowPowerTest;
  sram::SramArray array(cfg);
  sram::CycleCommand cmd;
  cmd.row = 0;
  cmd.col_group = 0;
  cmd.is_read = false;
  array.cycle(cmd);
  std::size_t active = 0;
  for (std::size_t c = 0; c < kCols; ++c)
    if (array.precharge_was_active(c)) ++active;
  EXPECT_EQ(active, 2 * w);
}

// Word writes land the logical bit XOR background on every cell of the word.
TEST_P(WordWidth, BackgroundPatternsApplyPerCell) {
  const std::size_t w = GetParam();
  SessionConfig cfg = config(w, Mode::kLowPowerTest);
  cfg.background = DataBackground::checkerboard();
  TestSession session(cfg);
  const auto r = session.run(march::parse_march("init", "{ B(w0) }"));
  EXPECT_EQ(r.mismatches, 0u);
  for (std::size_t row = 0; row < kRows; ++row)
    for (std::size_t col = 0; col < kCols; ++col)
      EXPECT_EQ(session.array().peek(row, col), (row + col) % 2 == 1)
          << "w=" << w << " (" << row << "," << col << ")";
}

// The BIST FSM agrees with TestSession for word-oriented geometries too.
TEST_P(WordWidth, BistMatchesSession) {
  const std::size_t w = GetParam();
  const auto test = march::algorithms::mats_plus();

  TestSession session(config(w, Mode::kLowPowerTest));
  const auto reference = session.run(test);

  sram::SramConfig acfg;
  acfg.geometry = {kRows, kCols, w};
  acfg.mode = Mode::kLowPowerTest;
  sram::SramArray array(acfg);
  core::BistController::Options opt;
  opt.mode = Mode::kLowPowerTest;
  core::BistController bist(core::BistProgram::compile(test),
                            array.geometry(), opt);
  const auto outcome = bist.run(array);

  EXPECT_EQ(outcome.cycles, reference.cycles);
  EXPECT_EQ(outcome.restore_pulses, reference.stats.restore_cycles);
  EXPECT_NEAR(array.meter().supply_total(), reference.supply_energy_j,
              1e-9 * reference.supply_energy_j);
}

// The simulator tracks the generalised closed-form model (which replaces
// (#col - 2) with (#col - 2w)).
TEST_P(WordWidth, SimulatorTracksGeneralisedModel) {
  const std::size_t w = GetParam();
  const auto test = march::algorithms::march_c_minus();
  const auto cmp =
      TestSession::compare_modes(config(w, Mode::kFunctional), test);
  const power::AnalyticModel model(power::TechnologyParams::tech_0p13um(),
                                   kRows, kCols, w);
  const auto counts = test.counts();
  EXPECT_NEAR(cmp.functional.energy_per_cycle_j, model.pf(counts),
              1e-3 * model.pf(counts));
  // PLPT carries boundary effects on small arrays (the model books the
  // follower recharge as a full-rail swing; with few word groups per row
  // the follower is still partially charged), so the closed form slightly
  // over-estimates.  8 % catches wiring mistakes while tolerating that.
  EXPECT_NEAR(cmp.low_power.energy_per_cycle_j, model.plpt(counts),
              8e-2 * model.plpt(counts));
  EXPECT_LE(cmp.low_power.energy_per_cycle_j,
            model.plpt(counts) * 1.001);  // the model is an upper bound
}

INSTANTIATE_TEST_SUITE_P(Widths, WordWidth,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}),
                         [](const auto& param) {
                           return "w" + std::to_string(param.param);
                         });

// Faults on any bit of a word are observed through the word read.
TEST(WordOriented, FaultOnAnyBitDetected) {
  for (std::size_t bit = 0; bit < 4; ++bit) {
    SessionConfig cfg = config(4, Mode::kLowPowerTest);
    const faults::FaultSpec spec{.kind = faults::FaultKind::kStuckAt1,
                                 .victim = {2, 3 * 4 + bit}};
    EXPECT_TRUE(
        core::detects_fault(cfg, march::algorithms::march_c_minus(), spec))
        << "bit " << bit;
  }
}

}  // namespace
