// Unit tests for the switch-level transient simulator: device model,
// schedules, waveform analysis, integration accuracy, energy accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mos.h"
#include "circuit/netlist.h"
#include "circuit/subcircuits.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"
#include "util/error.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using namespace sramlp::circuit;

// --- MOS model -----------------------------------------------------------

TEST(MosModel, CutoffBelowThreshold) {
  MosParams p{0.35, 100e-6};
  EXPECT_EQ(nmos_current(0.3, 1.0, 0.0, p), 0.0);
  EXPECT_EQ(nmos_current(0.0, 1.6, 0.0, p), 0.0);
}

TEST(MosModel, SaturationCurrent) {
  MosParams p{0.35, 100e-6};
  // vgs = 1.6, vov = 1.25, vds = 1.6 > vov -> saturation.
  const double i = nmos_current(1.6, 1.6, 0.0, p);
  EXPECT_NEAR(i, 0.5 * 100e-6 * 1.25 * 1.25, 1e-9);
}

TEST(MosModel, TriodeCurrent) {
  MosParams p{0.35, 100e-6};
  // vds = 0.1 << vov -> triode.
  const double i = nmos_current(1.6, 0.1, 0.0, p);
  EXPECT_NEAR(i, 100e-6 * (1.25 * 0.1 - 0.5 * 0.01), 1e-12);
}

TEST(MosModel, SourceDrainSymmetry) {
  MosParams p{0.35, 100e-6};
  const double fwd = nmos_current(1.6, 1.0, 0.2, p);
  const double rev = nmos_current(1.6, 0.2, 1.0, p);
  EXPECT_GT(fwd, 0.0);
  EXPECT_NEAR(fwd, -rev, 1e-15);
}

TEST(MosModel, PmosMirrorsNmos) {
  MosParams p{0.35, 100e-6};
  // PMOS with source at VDD, gate low, drain mid-rail: conducts from
  // source into drain, i.e. drain->source current is negative.
  const double i = pmos_current(0.0, 0.8, 1.6, p);
  EXPECT_LT(i, 0.0);
  // Gate at VDD: off.
  EXPECT_EQ(pmos_current(1.6, 0.8, 1.6, p), 0.0);
}

// --- schedules -----------------------------------------------------------

TEST(PiecewiseLinear, InterpolatesAndClamps) {
  PiecewiseLinear pl;
  pl.add(1e-9, 0.0);
  pl.add(2e-9, 1.6);
  EXPECT_DOUBLE_EQ(pl.at(0.0), 0.0);     // clamp before
  EXPECT_DOUBLE_EQ(pl.at(1.5e-9), 0.8);  // midpoint
  EXPECT_DOUBLE_EQ(pl.at(5e-9), 1.6);    // clamp after
}

TEST(PiecewiseLinear, RejectsUnorderedBreakpoints) {
  PiecewiseLinear pl;
  pl.add(2e-9, 1.0);
  EXPECT_THROW(pl.add(1e-9, 0.0), Error);
}

TEST(SquareWave, TogglesAtEdges) {
  const auto wave = make_square_wave(0.0, 1.6, {1e-9, 2e-9}, 50e-12);
  EXPECT_DOUBLE_EQ(wave.at(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(wave.at(1.5e-9), 1.6);
  EXPECT_DOUBLE_EQ(wave.at(2.5e-9), 0.0);
}

// --- waveform analysis ---------------------------------------------------

TEST(Waveform, CrossingDetection) {
  Waveform w("v");
  for (int i = 0; i <= 10; ++i) w.append(i * 1e-9, 10.0 - i);
  const auto t = w.time_of_crossing(5.0, /*rising=*/false);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5e-9, 1e-12);
  EXPECT_FALSE(w.time_of_crossing(5.0, /*rising=*/true).has_value());
}

TEST(Waveform, InterpolatedSampling) {
  Waveform w("v");
  w.append(0.0, 0.0);
  w.append(2.0, 4.0);
  EXPECT_DOUBLE_EQ(w.at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(3.0), 4.0);
}

TEST(Waveform, TrapezoidalIntegral) {
  Waveform w("p");
  w.append(0.0, 1.0);
  w.append(1.0, 3.0);
  w.append(2.0, 3.0);
  EXPECT_DOUBLE_EQ(w.integral(), 2.0 + 3.0);
}

TEST(Waveform, CsvExportsAllColumns) {
  Waveform a("a");
  Waveform b("b");
  a.append(0.0, 1.0);
  a.append(1.0, 2.0);
  b.append(0.0, 5.0);
  b.append(1.0, 6.0);
  const std::string csv = to_csv({&a, &b});
  EXPECT_NE(csv.find("time,a,b"), std::string::npos);
  EXPECT_NE(csv.find(",5"), std::string::npos);
}

// --- transient integration ----------------------------------------------

// RC discharge through a resistor must match the analytic exponential.
TEST(Transient, RcDischargeMatchesAnalytic) {
  Circuit c;
  const NodeId gnd = c.add_rail("gnd", 0.0);
  const NodeId n = c.add_node("cap", 100e-15, 1.6);
  c.add_resistor("r", n, gnd, 10e3);  // tau = 1 ns

  TransientOptions opt;
  opt.t_end = 3e-9;
  opt.dt = 0.1e-12;
  opt.sample_every = 10e-12;
  const auto result = simulate(c, {n}, opt);

  const auto& v = result.wave("cap");
  for (double t : {0.5e-9, 1e-9, 2e-9}) {
    const double expected = 1.6 * std::exp(-t / 1e-9);
    EXPECT_NEAR(v.at(t), expected, 0.01);
  }
}

// Charging a capacitor through a resistor draws C*V^2 from the supply and
// stores C*V^2/2; the other half dissipates in the resistor.
TEST(Transient, SupplyEnergyAccounting) {
  Circuit c;
  const NodeId vdd = c.add_rail("vdd", 1.6);
  const NodeId n = c.add_node("cap", 200e-15, 0.0);
  c.add_resistor("r", vdd, n, 5e3);  // tau = 1 ns

  TransientOptions opt;
  opt.t_end = 12e-9;  // 12 tau: fully charged
  opt.dt = 0.1e-12;
  const auto result = simulate(c, {n}, opt);

  const double cv2 = 200e-15 * 1.6 * 1.6;
  EXPECT_NEAR(result.total_supplied(), cv2, 0.02 * cv2);
  EXPECT_NEAR(result.energy().branch_dissipation[0], 0.5 * cv2,
              0.02 * cv2);
  EXPECT_NEAR(result.wave("cap").back_value(), 1.6, 0.01);
}

TEST(Transient, RejectsBadOptions) {
  Circuit c;
  c.add_rail("gnd", 0.0);
  TransientOptions opt;
  opt.dt = 0.0;
  EXPECT_THROW(simulate(c, {}, opt), Error);
}

TEST(Circuit, NodeLookupByName) {
  Circuit c;
  c.add_rail("vdd", 1.6);
  const NodeId n = c.add_node("x", 1e-15);
  EXPECT_EQ(c.node("x"), n);
  EXPECT_THROW(c.node("missing"), Error);
}

TEST(Circuit, RejectsNonPositiveElements) {
  Circuit c;
  const NodeId a = c.add_rail("a", 0.0);
  EXPECT_THROW(c.add_node("bad", 0.0), Error);
  EXPECT_THROW(c.add_resistor("r", a, a, 0.0), Error);
}

// --- pass-device fixtures ------------------------------------------------

TEST(PassFixture, TransmissionGatePassesBothRails) {
  for (bool rising : {true, false}) {
    auto f = build_pass_fixture(PassDevice::kTransmissionGate, rising);
    TransientOptions opt;
    opt.t_end = f.t_end;
    opt.dt = 0.05e-12;
    const auto r = simulate(f.circuit, {f.out}, opt);
    const double target = rising ? 1.6 : 0.0;
    EXPECT_NEAR(r.wave("out").back_value(), target, 0.05)
        << "edge rising=" << rising;
  }
}

TEST(PassFixture, NmosPassDegradesRisingEdge) {
  auto f = build_pass_fixture(PassDevice::kNmosPassTransistor, true);
  TransientOptions opt;
  opt.t_end = f.t_end;
  opt.dt = 0.05e-12;
  const auto r = simulate(f.circuit, {f.out}, opt);
  // The NMOS stops conducting at VDD - Vth: the output never reaches the
  // rail — the paper's reason for using a transmission gate.
  EXPECT_LT(r.wave("out").back_value(), 1.6 - 0.3);
  EXPECT_GT(r.wave("out").back_value(), 0.9);
}

TEST(PassFixture, NmosPassStillPassesFallingEdge) {
  auto f = build_pass_fixture(PassDevice::kNmosPassTransistor, false);
  TransientOptions opt;
  opt.t_end = f.t_end;
  opt.dt = 0.05e-12;
  const auto r = simulate(f.circuit, {f.out}, opt);
  EXPECT_NEAR(r.wave("out").back_value(), 0.0, 0.05);
}

}  // namespace
