// The sweep service (dist/service.h) and its parts: steal-queue ownership
// and fault-tolerance invariants, the two-tier result cache (LRU + spill,
// including torn-tail recovery), the framed socket transport, canonical
// per-point fingerprints, and the acceptance anchor — a service-computed
// job is byte-identical to `sramlp_dist single` on the same job, and a
// resubmitted job is answered from the cache without executing a shard,
// byte-identical again.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "dist/coordinator.h"
#include "dist/job.h"
#include "dist/result_cache.h"
#include "dist/service.h"
#include "dist/steal_queue.h"
#include "io/framing.h"
#include "march/algorithms.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/error.h"

namespace {

namespace fs = std::filesystem;
using namespace sramlp;
using dist::JobSpec;

/// Fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("sramlp_service_test_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

JobSpec small_sweep_job() {
  JobSpec job;
  job.kind = JobSpec::Kind::kSweep;
  job.grid.geometries = {{8, 16, 1}, {4, 32, 1}, {6, 24, 2}};
  job.grid.backgrounds = {sram::DataBackground::solid0(),
                          sram::DataBackground::checkerboard()};
  job.grid.algorithms = {march::algorithms::mats_plus(),
                         march::algorithms::march_c_minus()};
  return job;  // 12 points
}

JobSpec small_campaign_job() {
  JobSpec job;
  job.kind = JobSpec::Kind::kCampaign;
  job.config.geometry = {8, 8, 1};
  job.test = march::algorithms::march_c_minus();
  job.faults = faults::standard_fault_library(job.config.geometry, 11);
  return job;
}

/// The byte-level ground truth: the single-process merged document.
std::string single_document(const JobSpec& job) {
  dist::MergedResult merged;
  merged.kind = job.kind;
  if (job.kind == JobSpec::Kind::kSweep) {
    merged.sweep = core::SweepRunner().run(job.grid);
  } else {
    core::CampaignRunner::Options options;
    options.batched = true;
    core::CampaignReport report =
        core::CampaignRunner(options).run(job.config, *job.test, job.faults);
    merged.campaign.algorithm = report.algorithm;
    merged.campaign.entries = std::move(report.entries);
  }
  return dist::merged_document(merged);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

// --- StealQueue --------------------------------------------------------------

TEST(StealQueue, ChopsIntoSmallShardsAndPreservesEveryIndex) {
  const dist::StealQueue queue(iota_indices(10), 3);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.shard_count, 4u);  // 3+3+3+1
  EXPECT_EQ(stats.pending, 4u);
  EXPECT_FALSE(queue.done());
}

TEST(StealQueue, MaxShardsGrowsShardSize) {
  const dist::StealQueue queue(iota_indices(100), 1, 8);
  const auto stats = queue.stats();
  EXPECT_LE(stats.shard_count, 8u);
  // ceil(100/8) = 13 per shard -> 8 shards of <= 13.
  EXPECT_EQ(stats.shard_count, 8u);
}

TEST(StealQueue, LeaseCompleteLifecycle) {
  dist::StealQueue queue(iota_indices(4), 2);
  std::size_t seen = 0;
  while (auto shard = queue.lease(/*worker_id=*/1)) {
    seen += shard->indices.size();
    queue.complete(shard->id);
  }
  EXPECT_EQ(seen, 4u);
  EXPECT_TRUE(queue.done());
  EXPECT_EQ(queue.stats().requeues, 0u);
}

TEST(StealQueue, AbandonRequeuesOnlyThatWorkersLeases) {
  dist::StealQueue queue(iota_indices(6), 2);  // 3 shards
  const auto a = queue.lease(1);
  const auto b = queue.lease(2);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(queue.abandon(1), 1u);  // worker 1 died holding one shard
  EXPECT_EQ(queue.stats().pending, 2u);  // its shard + the never-leased one
  // Worker 2 finishes everything, including the requeued shard.
  queue.complete(b->id);
  while (auto shard = queue.lease(2)) queue.complete(shard->id);
  EXPECT_TRUE(queue.done());
  EXPECT_EQ(queue.stats().requeues, 1u);
}

TEST(StealQueue, LateCompletionOfRequeuedShardDropsStalePendingCopy) {
  dist::StealQueue queue(iota_indices(2), 2);  // one shard
  const auto shard = queue.lease(1);
  ASSERT_TRUE(shard);
  EXPECT_EQ(queue.abandon(1), 1u);   // presumed dead...
  queue.complete(shard->id);         // ...but its completion arrives late
  EXPECT_TRUE(queue.done());
  EXPECT_FALSE(queue.lease(2).has_value());  // stale copy is gone
}

TEST(StealQueue, FailRetriesBoundedTimes) {
  dist::StealQueue queue(iota_indices(2), 2);  // one shard
  const unsigned retries = 1;                  // 2 attempts total
  auto first = queue.lease(1);
  ASSERT_TRUE(first);
  EXPECT_TRUE(queue.fail(first->id, retries));   // attempt 1 failed: requeued
  auto second = queue.lease(1);
  ASSERT_TRUE(second);
  EXPECT_FALSE(queue.fail(second->id, retries));  // attempt 2 failed: give up
}

// --- ResultCache -------------------------------------------------------------

TEST(ResultCache, MemoryLruEvictsLeastRecentlyUsed) {
  dist::ResultCache cache({/*capacity=*/2, /*spill_path=*/""});
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_EQ(cache.get(1), std::optional<std::string>("one"));  // 1 now MRU
  cache.put(3, "three");                                       // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_FALSE(cache.get(2).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCache, SpillSurvivesRestartAndEviction) {
  TempDir dir("spill");
  const std::string spill = dir.str() + "/cache.jsonl";
  {
    dist::ResultCache cache({/*capacity=*/1, spill});
    cache.put(10, "ten");
    cache.put(20, "twenty");  // evicts 10 from memory; both on disk
    EXPECT_EQ(cache.get(10), std::optional<std::string>("ten"));  // spill hit
    EXPECT_GE(cache.stats().spill_hits, 1u);
  }
  // A fresh cache over the same spill file warm-starts from it.
  dist::ResultCache reborn({/*capacity=*/4, spill});
  EXPECT_EQ(reborn.stats().loaded, 2u);
  EXPECT_EQ(reborn.get(20), std::optional<std::string>("twenty"));
  EXPECT_EQ(reborn.get(10), std::optional<std::string>("ten"));
}

TEST(ResultCache, TornTailRecordIsSkippedAndOverwritten) {
  TempDir dir("torn");
  const std::string spill = dir.str() + "/cache.jsonl";
  {
    dist::ResultCache cache({4, spill});
    cache.put(1, "alpha");
    cache.put(2, "beta");
  }
  {
    // Simulate a daemon killed mid-append: chop the final record short.
    std::ifstream in(spill);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(spill, std::ios::trunc);
    out << contents.substr(0, contents.size() - 7);
  }
  dist::ResultCache cache({4, spill});
  EXPECT_EQ(cache.stats().loaded, 1u);  // the intact record only
  EXPECT_EQ(cache.get(1), std::optional<std::string>("alpha"));
  EXPECT_FALSE(cache.get(2).has_value());
  cache.put(3, "gamma");  // appends cleanly past the torn tail
  dist::ResultCache after({4, spill});
  EXPECT_EQ(after.get(3), std::optional<std::string>("gamma"));
  EXPECT_EQ(after.get(1), std::optional<std::string>("alpha"));
}

// --- framing -----------------------------------------------------------------

TEST(Framing, RoundTripsDocumentsOverTcp) {
  io::Socket listener = io::listen_socket("tcp:0");
  const std::string address = io::local_address(listener);
  std::thread server([&] {
    io::LineChannel channel(io::accept_connection(listener));
    while (auto message = channel.receive()) channel.send(*message);
  });
  io::LineChannel client(io::connect_socket(address, 2000));
  io::JsonValue doc = io::JsonValue::object();
  doc.set("exact", io::JsonValue::integer(9007199254740993ull));  // 2^53+1
  doc.set("pi", io::JsonValue::number(3.141592653589793));
  ASSERT_TRUE(client.send(doc));
  const auto echo = client.receive();
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->dump(), doc.dump());  // byte-exact through the wire
  client.shutdown();
  listener.shutdown();
  server.join();
}

TEST(Framing, UnixSocketAndStaleBindRecovery) {
  TempDir dir("unixsock");
  const std::string address = "unix:" + dir.str() + "/svc.sock";
  {
    io::Socket listener = io::listen_socket(address);
    EXPECT_EQ(io::local_address(listener), address);
  }
  // The path is now a stale socket file; rebinding must succeed.
  io::Socket listener = io::listen_socket(address);
  std::thread server([&] {
    io::LineChannel channel(io::accept_connection(listener));
    channel.receive();
  });
  io::LineChannel client(io::connect_socket(address, 2000));
  EXPECT_TRUE(client.send(io::JsonValue::object()));
  client.shutdown();
  listener.shutdown();
  server.join();
}

TEST(Framing, GarbledFrameReadsAsEndOfStream) {
  io::Socket listener = io::listen_socket("tcp:0");
  const std::string address = io::local_address(listener);
  std::thread server([&] {
    io::Socket conn = io::accept_connection(listener);
    const char raw[] = "{\"truncated\": tru\n";  // never valid JSON
    (void)::send(conn.fd(), raw, sizeof raw - 1, 0);
  });
  io::LineChannel client(io::connect_socket(address, 2000));
  EXPECT_FALSE(client.receive().has_value());  // shard-file rule: EOF
  server.join();
  listener.shutdown();
}

// --- fingerprints ------------------------------------------------------------

TEST(Fingerprints, SamePhysicalPointHashesEquallyAcrossGrids) {
  const JobSpec big = small_sweep_job();
  JobSpec small;
  small.kind = JobSpec::Kind::kSweep;
  // Grid point (geometry 0, background 0, algorithm 0) of `big`, alone.
  small.grid.geometries = {big.grid.geometries[0]};
  small.grid.backgrounds = {big.grid.backgrounds[0]};
  small.grid.algorithms = {big.grid.algorithms[0]};
  EXPECT_EQ(dist::point_fingerprint(big, 0), dist::point_fingerprint(small, 0));
  // A different algorithm at the same config must NOT collide.
  EXPECT_NE(dist::point_fingerprint(big, 0), dist::point_fingerprint(big, 1));
  // Job fingerprints of different grids differ even when points overlap.
  EXPECT_NE(big.fingerprint(), small.fingerprint());
}

TEST(Fingerprints, Fnv1a64MatchesKnownVector) {
  // FNV-1a test vectors: empty -> offset basis, "a" -> published digest.
  EXPECT_EQ(dist::fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(dist::fnv1a64("a"), 12638187200555641996ull);
}

// --- Service end-to-end ------------------------------------------------------

/// Service + worker-thread harness: workers run the real steal protocol
/// over real sockets, in-process.
class ServiceHarness {
 public:
  explicit ServiceHarness(dist::Service::Options options,
                          std::size_t workers = 2,
                          dist::ServiceWorker::Options worker_options = {}) {
    options.listen = "tcp:0";
    service_ = std::make_unique<dist::Service>(options);
    service_->start();
    address_ = service_->address();
    for (std::size_t w = 0; w < workers; ++w)
      threads_.emplace_back([this, worker_options] {
        dist::ServiceWorker(worker_options).run(service_->address());
      });
  }

  ~ServiceHarness() {
    service_->request_stop();
    service_->wait();
    for (std::thread& t : threads_) t.join();
  }

  const std::string& address() const { return address_; }
  dist::Service& service() { return *service_; }

  void add_worker(dist::ServiceWorker::Options options) {
    threads_.emplace_back([this, options] {
      dist::ServiceWorker(options).run(service_->address());
    });
  }

 private:
  std::unique_ptr<dist::Service> service_;
  std::string address_;
  std::vector<std::thread> threads_;
};

TEST(Service, SweepJobByteIdenticalToSingleAndCachedOnResubmit) {
  const JobSpec job = small_sweep_job();
  const std::string reference = single_document(job);
  dist::Service::Options options;
  options.points_per_shard = 2;
  ServiceHarness harness(options, /*workers=*/3);

  const dist::SubmitResult first =
      dist::submit_job(harness.address(), job, 5000);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.total_points, job.size());
  EXPECT_EQ(first.streamed_lines, job.size());
  EXPECT_EQ(first.document, reference);  // byte-identical to single

  const dist::SubmitResult second =
      dist::submit_job(harness.address(), job, 5000);
  EXPECT_TRUE(second.cache_hit);           // no shard executed
  EXPECT_EQ(second.streamed_lines, 0u);    // replayed, not recomputed
  EXPECT_EQ(second.document, reference);   // byte-identical again

  const dist::ServiceStats stats = harness.service().stats();
  EXPECT_EQ(stats.jobs_submitted, 2u);
  EXPECT_EQ(stats.job_cache_hits, 1u);
  EXPECT_EQ(stats.points_executed, job.size());  // once, not twice
}

TEST(Service, CampaignJobByteIdenticalToSingle) {
  const JobSpec job = small_campaign_job();
  const std::string reference = single_document(job);
  dist::Service::Options options;
  options.points_per_shard = 3;
  ServiceHarness harness(options, /*workers=*/2);
  const dist::SubmitResult result =
      dist::submit_job(harness.address(), job, 5000);
  EXPECT_EQ(result.document, reference);
  const dist::SubmitResult again =
      dist::submit_job(harness.address(), job, 5000);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.document, reference);
}

TEST(Service, PointCacheAnswersOverlapOfANewJob) {
  const JobSpec big = small_sweep_job();  // 12 points
  JobSpec subset;
  subset.kind = JobSpec::Kind::kSweep;
  subset.grid.geometries = {big.grid.geometries[0], big.grid.geometries[1]};
  subset.grid.backgrounds = {big.grid.backgrounds[0]};
  subset.grid.algorithms = big.grid.algorithms;  // 4 points, all inside big
  const std::string reference = single_document(subset);

  dist::Service::Options options;
  options.points_per_shard = 2;
  ServiceHarness harness(options, /*workers=*/2);
  dist::submit_job(harness.address(), big, 5000);
  const dist::SubmitResult result =
      dist::submit_job(harness.address(), subset, 5000);
  EXPECT_FALSE(result.cache_hit);  // different job fingerprint...
  EXPECT_EQ(result.cached_points, subset.size());  // ...but every point known
  EXPECT_EQ(result.document, reference);  // rebound coordinates, exact bytes
  EXPECT_EQ(harness.service().stats().points_executed, big.size());
}

TEST(Service, InFlightDuplicateSubmitsAttachInsteadOfRecomputing) {
  const JobSpec job = small_sweep_job();
  const std::string reference = single_document(job);
  dist::Service::Options options;
  options.points_per_shard = 1;  // many small shards: a wide in-flight window
  dist::ServiceWorker::Options slow;
  slow.slow_point_us = 3000;
  ServiceHarness harness(options, /*workers=*/1, slow);

  std::vector<dist::SubmitResult> results(2);
  std::thread a([&] { results[0] = dist::submit_job(harness.address(), job); });
  std::thread b([&] { results[1] = dist::submit_job(harness.address(), job); });
  a.join();
  b.join();
  EXPECT_EQ(results[0].document, reference);
  EXPECT_EQ(results[1].document, reference);
  const dist::ServiceStats stats = harness.service().stats();
  // Both orders are legal (the second submit may land after completion and
  // hit the job cache instead), but the points ran at most once.
  EXPECT_EQ(stats.points_executed, job.size());
  EXPECT_EQ(stats.jobs_deduplicated + stats.job_cache_hits, 1u);
}

TEST(Service, SpillFileAnswersAcrossDaemonRestartsWithNoWorkers) {
  TempDir dir("restart");
  const std::string spill = dir.str() + "/results.jsonl";
  const JobSpec job = small_sweep_job();
  std::string reference;
  {
    dist::Service::Options options;
    options.cache.spill_path = spill;
    ServiceHarness harness(options, /*workers=*/2);
    reference = dist::submit_job(harness.address(), job, 5000).document;
  }
  // A brand-new daemon with ZERO workers must answer from the spill.
  dist::Service::Options options;
  options.cache.spill_path = spill;
  ServiceHarness harness(options, /*workers=*/0);
  const dist::SubmitResult result =
      dist::submit_job(harness.address(), job, 5000);
  EXPECT_TRUE(result.cache_hit);
  EXPECT_EQ(result.document, reference);
  EXPECT_EQ(result.document, single_document(job));
}

TEST(Service, StatsQueryAndShutdownOverTheWire) {
  dist::Service::Options options;
  ServiceHarness harness(options, /*workers=*/1);
  dist::submit_job(harness.address(), small_sweep_job(), 5000);
  const dist::ServiceStats stats = dist::query_stats(harness.address());
  EXPECT_EQ(stats.jobs_submitted, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_GE(stats.workers_connected, 1u);
  dist::request_shutdown(harness.address());
  harness.service().wait();  // returns because the shutdown arrived
}

TEST(Service, TelemetryOnOffDocumentsAreByteIdentical) {
  // The telemetry contract: logging at the chattiest level plus span
  // tracing must never perturb a single result byte.  Both runs compute
  // the job from scratch (independent daemons, no shared spill file), so
  // this is not answered by cache replay.
  TempDir dir("telemetry");
  const JobSpec job = small_sweep_job();
  const std::string reference = single_document(job);

  obs::Logger::global().configure(obs::LogLevel::kDebug,
                                  obs::Logger::Format::kJsonl,
                                  dir.str() + "/service.log");
  obs::Tracer::global().enable(1 << 12);
  std::string with_telemetry;
  {
    dist::Service::Options options;
    options.points_per_shard = 2;
    ServiceHarness harness(options, /*workers=*/2);
    with_telemetry = dist::submit_job(harness.address(), job, 5000).document;
  }
  const std::uint64_t spans = obs::Tracer::global().recorded();
  obs::Tracer::global().disable();
  obs::Logger::global().configure(obs::LogLevel::kOff,
                                  obs::Logger::Format::kHuman, "");

  std::string without_telemetry;
  {
    dist::Service::Options options;
    options.points_per_shard = 2;
    ServiceHarness harness(options, /*workers=*/2);
    without_telemetry =
        dist::submit_job(harness.address(), job, 5000).document;
  }
  obs::Logger::global().configure(obs::LogLevel::kInfo,
                                  obs::Logger::Format::kHuman, "");

  // The instrumented run actually instrumented something...
  EXPECT_GT(spans, 0u);
  EXPECT_FALSE(read_file(dir.str() + "/service.log").empty());
  // ...and neither telemetry state changed a single byte.
  EXPECT_EQ(with_telemetry, reference);
  EXPECT_EQ(without_telemetry, reference);
}

TEST(Service, MetricsRequestServesPrometheusOverTheWire) {
  dist::Service::Options options;
  ServiceHarness harness(options, /*workers=*/1);
  dist::submit_job(harness.address(), small_sweep_job(), 5000);
  const dist::MetricsSnapshot snapshot =
      dist::query_metrics(harness.address());
  // The Prometheus text carries the service counters with live values.
  EXPECT_NE(snapshot.prometheus.find("# TYPE sramlp_jobs_submitted_total"),
            std::string::npos);
  EXPECT_NE(snapshot.prometheus.find("sramlp_points_executed_total"),
            std::string::npos);
  // The JSON lane exposes the same registry.
  EXPECT_TRUE(snapshot.json.has("sramlp_jobs_submitted_total"));
  EXPECT_GE(snapshot.json.at("sramlp_jobs_submitted_total")
                .at("instances")
                .at(std::size_t{0})
                .at("value")
                .as_uint(),
            1u);
}

TEST(Service, RejectsMalformedJobWithoutDying) {
  dist::Service::Options options;
  ServiceHarness harness(options, /*workers=*/1);
  io::LineChannel channel(io::connect_socket(harness.address(), 5000));
  io::JsonValue bad = io::JsonValue::object();
  bad.set("type", io::JsonValue::string("submit"));
  bad.set("job", io::JsonValue::object());  // no kind/grid: invalid
  ASSERT_TRUE(channel.send(bad));
  const auto reply = channel.receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->at("type").as_string(), "job_failed");
  // The service survives and still answers real jobs.
  const dist::SubmitResult result =
      dist::submit_job(harness.address(), small_sweep_job(), 5000);
  EXPECT_EQ(result.document, single_document(small_sweep_job()));
}

}  // namespace
