// March delay ("Del") elements and data-retention faults: parsing, idle
// semantics (energy, bit-line hold), and the detection separation between
// March G with and without its pauses.
#include <gtest/gtest.h>

#include "core/bist.h"
#include "core/fault_campaign.h"
#include "core/session.h"
#include "faults/models.h"
#include "march/algorithms.h"
#include "march/parser.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using faults::FaultKind;
using faults::FaultSpec;
using sram::Mode;

// --- parsing and structure ---------------------------------------------------

TEST(PauseElements, ParserAcceptsDel) {
  const auto t = march::parse_march("probe", "{ B(w0); Del; B(r0) }");
  ASSERT_EQ(t.elements().size(), 3u);
  EXPECT_FALSE(t.elements()[0].is_pause());
  EXPECT_TRUE(t.elements()[1].is_pause());
  EXPECT_EQ(t.elements()[1].pause_cycles, march::kDefaultPauseCycles);
  EXPECT_EQ(t.elements()[1].str(), "Del");
}

TEST(PauseElements, DelDoesNotCollideWithDownDirection) {
  const auto t = march::parse_march("probe", "{ D(r0); Del; D(w1) }");
  EXPECT_EQ(t.elements()[0].direction, march::Direction::kDown);
  EXPECT_TRUE(t.elements()[1].is_pause());
  EXPECT_EQ(t.elements()[2].direction, march::Direction::kDown);
}

TEST(PauseElements, StatsSkipPauses) {
  // The paper's Table 1 counts March G without its delays.
  const auto with = march::algorithms::march_g_with_delays().stats();
  const auto without = march::algorithms::march_g().stats();
  EXPECT_EQ(with.elements, without.elements);
  EXPECT_EQ(with.operations, without.operations);
  EXPECT_EQ(with.reads, without.reads);
  EXPECT_EQ(with.writes, without.writes);
}

TEST(PauseElements, NotationRoundTrips) {
  const auto original = march::algorithms::march_g_with_delays();
  const auto reparsed = march::parse_march("copy", original.str());
  EXPECT_EQ(reparsed.str(), original.str());
}

TEST(PauseElements, ValidationRejectsOpsOnPause) {
  march::MarchElement bad;
  bad.pause_cycles = 10;
  bad.ops.push_back(march::Operation::kR0);
  EXPECT_THROW(bad.validate(), Error);
}

// --- idle semantics -------------------------------------------------------------

TEST(IdleCycles, OnlyClockAndControlBurn) {
  sram::SramConfig cfg;
  cfg.geometry = {4, 8, 1};
  sram::SramArray array(cfg);
  array.idle(100);
  EXPECT_EQ(array.meter().cycles(), 100u);
  const double expected =
      100.0 * (cfg.tech.e_clock_tree + cfg.tech.e_control_base);
  EXPECT_NEAR(array.meter().supply_total(), expected, 1e-18);
}

TEST(IdleCycles, FloatingBitlinesHoldThroughIdle) {
  sram::SramConfig cfg;
  cfg.geometry = {2, 8, 1};
  cfg.mode = Mode::kLowPowerTest;
  sram::SramArray array(cfg);
  // Operate along row 0; columns decay behind the selection.
  for (std::size_t c = 0; c < 8; ++c) {
    sram::CycleCommand cmd;
    cmd.row = 0;
    cmd.col_group = c;
    cmd.is_read = false;
    cmd.value = true;
    array.cycle(cmd);
  }
  const double before = array.bitline_low_side_voltage(0);
  array.idle(50);  // word lines low: no discharge path
  EXPECT_NEAR(array.bitline_low_side_voltage(0), before, 1e-12);
}

TEST(IdleCycles, SessionRunsDelaysInBothModes) {
  for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
    SessionConfig cfg;
    cfg.geometry = {4, 8, 1};
    cfg.mode = mode;
    TestSession session(cfg);
    const auto r = session.run(march::algorithms::march_g_with_delays());
    EXPECT_EQ(r.mismatches, 0u) << static_cast<int>(mode);
    EXPECT_EQ(r.stats.faulty_swaps, 0u);
    // 23 ops x 32 addresses + 2 pauses x 1024 cycles.
    EXPECT_EQ(r.cycles, 23u * 32u + 2u * march::kDefaultPauseCycles);
  }
}

TEST(IdleCycles, BistRejectsDelayElements) {
  EXPECT_THROW(
      core::BistProgram::compile(march::algorithms::march_g_with_delays()),
      Error);
}

// --- data-retention fault ---------------------------------------------------------

TEST(DataRetention, LeaksAfterEnoughIdleOnly) {
  FaultSpec f;
  f.kind = FaultKind::kDataRetention;
  f.victim = {1, 1};
  f.forced_value = true;
  f.retention_idle_cycles = 80;
  faults::FaultSet set({f});

  sram::SramConfig cfg;
  cfg.geometry = {4, 8, 1};
  sram::SramArray array(cfg);
  array.attach_fault_model(&set);
  array.poke(1, 1, false);

  array.idle(50);
  EXPECT_FALSE(array.peek(1, 1));  // below the threshold
  array.idle(50);                  // cumulative 100 >= 80
  EXPECT_TRUE(array.peek(1, 1));
  EXPECT_NE(f.describe().find("DRF"), std::string::npos);
}

// March G detects the retention fault only WITH its delay elements — the
// reason the delays exist.
TEST(DataRetention, DelaysSeparateMarchGVariants) {
  FaultSpec f;
  f.kind = FaultKind::kDataRetention;
  f.victim = {2, 5};
  f.forced_value = true;  // leaks to 1 while the array holds 0
  f.retention_idle_cycles = 1000;

  SessionConfig cfg;
  cfg.geometry = {8, 8, 1};
  EXPECT_FALSE(core::detects_fault(cfg, march::algorithms::march_g(), f));
  EXPECT_TRUE(core::detects_fault(
      cfg, march::algorithms::march_g_with_delays(), f));

  // And the detection survives the low-power test mode (the pauses restore
  // all bit-lines first, so the idle window behaves identically).
  SessionConfig lp = cfg;
  lp.mode = Mode::kLowPowerTest;
  EXPECT_TRUE(core::detects_fault(
      lp, march::algorithms::march_g_with_delays(), f));
}

TEST(DataRetention, OppositePolarityCaughtBySecondDelay) {
  // A cell leaking to 0 is exposed by the element after the second delay
  // (which reads r1 first).
  FaultSpec f;
  f.kind = FaultKind::kDataRetention;
  f.victim = {3, 3};
  f.forced_value = false;
  f.retention_idle_cycles = 1500;  // fires during the SECOND pause
  SessionConfig cfg;
  cfg.geometry = {8, 8, 1};
  EXPECT_TRUE(core::detects_fault(
      cfg, march::algorithms::march_g_with_delays(), f));
}

}  // namespace
