// Data-background tests: pattern definitions, logical/physical mapping,
// and the paper's background-independence claims, parameterised over every
// built-in background x both operating modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include "core/fault_campaign.h"
#include "core/session.h"
#include "march/algorithms.h"
#include "march/parser.h"
#include "power/report.h"
#include "sram/background.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using sram::BackgroundKind;
using sram::DataBackground;
using sram::Mode;

// --- pattern definitions ------------------------------------------------------

TEST(DataBackground, PatternsMatchTheirDefinitions) {
  const DataBackground cb = DataBackground::checkerboard();
  EXPECT_FALSE(cb.at(0, 0));
  EXPECT_TRUE(cb.at(0, 1));
  EXPECT_TRUE(cb.at(1, 0));
  EXPECT_FALSE(cb.at(1, 1));

  const DataBackground rows = DataBackground::row_stripes();
  EXPECT_FALSE(rows.at(0, 5));
  EXPECT_TRUE(rows.at(1, 5));

  const DataBackground cols = DataBackground::column_stripes();
  EXPECT_FALSE(cols.at(5, 0));
  EXPECT_TRUE(cols.at(5, 1));

  EXPECT_FALSE(DataBackground::solid0().at(3, 3));
  EXPECT_TRUE(DataBackground::solid1().at(3, 3));
}

TEST(DataBackground, PhysicalIsLogicalXorBackground) {
  const DataBackground cb = DataBackground::checkerboard();
  EXPECT_FALSE(cb.physical(false, 0, 0));
  EXPECT_TRUE(cb.physical(false, 0, 1));   // background 1, logical 0
  EXPECT_FALSE(cb.physical(true, 0, 1));   // background 1, logical 1
  EXPECT_TRUE(cb.physical(true, 0, 0));
}

TEST(DataBackground, DefaultIsSolid0) {
  EXPECT_EQ(DataBackground(), DataBackground::solid0());
  EXPECT_EQ(DataBackground().kind(), BackgroundKind::kSolid0);
}

TEST(DataBackground, NamesAreDistinct) {
  std::set<std::string> names;
  for (const auto kind : DataBackground::kinds())
    names.insert(DataBackground(kind).name());
  EXPECT_EQ(names.size(), DataBackground::kinds().size());
}

// --- behaviour under March runs, swept over background x mode ----------------

using SweepParam = std::tuple<BackgroundKind, Mode>;

class BackgroundSweep : public ::testing::TestWithParam<SweepParam> {};

// A fault-free March run passes under every background in every mode —
// the paper's "any value can be stored in the cells".
TEST_P(BackgroundSweep, FaultFreeMarchPasses) {
  const auto [kind, mode] = GetParam();
  SessionConfig cfg;
  cfg.geometry = {8, 16, 1};
  cfg.mode = mode;
  cfg.background = DataBackground(kind);
  TestSession session(cfg);
  const auto result = session.run(march::algorithms::march_c_minus());
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_EQ(result.stats.faulty_swaps, 0u);
}

// The background changes cell data but not the energy picture.
TEST_P(BackgroundSweep, EnergyIndependentOfBackground) {
  const auto [kind, mode] = GetParam();
  SessionConfig base;
  base.geometry = {8, 16, 1};
  base.mode = mode;
  TestSession reference(base);
  const auto ref = reference.run(march::algorithms::mats_plus());

  SessionConfig cfg = base;
  cfg.background = DataBackground(kind);
  TestSession session(cfg);
  const auto result = session.run(march::algorithms::mats_plus());
  EXPECT_NEAR(result.supply_energy_j, ref.supply_energy_j,
              1e-9 * ref.supply_energy_j);
}

// After the init element writes logical 0 everywhere, the physical image
// equals the background pattern.
TEST_P(BackgroundSweep, ArrayHoldsThePatternAfterInit) {
  const auto [kind, mode] = GetParam();
  SessionConfig cfg;
  cfg.geometry = {8, 16, 1};
  cfg.mode = mode;
  cfg.background = DataBackground(kind);
  TestSession session(cfg);
  session.run(march::parse_march("init", "{ B(w0) }"));
  const DataBackground bg(kind);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 16; ++c)
      EXPECT_EQ(session.array().peek(r, c), bg.at(r, c))
          << bg.name() << " cell (" << r << "," << c << ")";
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& param) {
  const auto [kind, mode] = param.param;
  std::string name = DataBackground(kind).name();
  for (auto& ch : name)
    if (ch == ' ') ch = '_';
  return name + (mode == Mode::kFunctional ? "_fn" : "_lp");
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, BackgroundSweep,
    ::testing::Combine(::testing::ValuesIn(DataBackground::kinds()),
                       ::testing::Values(Mode::kFunctional,
                                         Mode::kLowPowerTest)),
    sweep_name);

// Detection verdicts are background-independent for March C- (it reads
// both data polarities at every address).
TEST(BackgroundDetection, StuckAtVerdictsIndependentOfBackground) {
  const faults::FaultSpec sa0{.kind = faults::FaultKind::kStuckAt0,
                              .victim = {3, 7}};
  const faults::FaultSpec sa1{.kind = faults::FaultKind::kStuckAt1,
                              .victim = {5, 2}};
  for (const auto kind : DataBackground::kinds()) {
    SessionConfig cfg;
    cfg.geometry = {8, 16, 1};
    cfg.background = DataBackground(kind);
    for (const auto& spec : {sa0, sa1}) {
      EXPECT_TRUE(core::detects_fault(cfg, march::algorithms::march_c_minus(),
                                      spec))
          << DataBackground(kind).name();
    }
  }
}

// --- report helpers (power::to_csv / to_markdown / summary_line) --------------

TEST(PowerReport, CsvHasHeaderAndRows) {
  SessionConfig cfg;
  cfg.geometry = {4, 8, 1};
  TestSession session(cfg);
  const auto result = session.run(march::algorithms::mats());
  const std::string csv = power::to_csv(result.meter);
  EXPECT_NE(csv.find("source,energy_j"), std::string::npos);
  EXPECT_NE(csv.find("precharge RES fight"), std::string::npos);
  // One line per non-zero source plus the header.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines),
            result.meter.breakdown().size() + 1);
}

TEST(PowerReport, MarkdownIsATable) {
  SessionConfig cfg;
  cfg.geometry = {4, 8, 1};
  TestSession session(cfg);
  const auto result = session.run(march::algorithms::mats());
  const std::string md = power::to_markdown(result.meter);
  EXPECT_NE(md.find("| source | pJ/cycle | share |"), std::string::npos);
  EXPECT_NE(md.find("| word-line swing |"), std::string::npos);
}

TEST(PowerReport, SummaryLineMentionsCyclesAndShare) {
  SessionConfig cfg;
  cfg.geometry = {4, 8, 1};
  TestSession session(cfg);
  const auto result = session.run(march::algorithms::mats());
  const std::string line = power::summary_line(result.meter);
  EXPECT_NE(line.find("pJ/cycle"), std::string::npos);
  EXPECT_NE(line.find("128 cycles"), std::string::npos);  // 4 ops x 32
  EXPECT_NE(line.find("pre-charge-related"), std::string::npos);
}

}  // namespace
