// Tests of address scrambling and the descrambled low-power order: the
// logical sequence a BIST must issue so a scrambled memory is physically
// walked word-line-after-word-line (the LP-mode precondition).
#include <gtest/gtest.h>

#include "core/session.h"
#include "march/algorithms.h"
#include "march/scramble_order.h"
#include "sram/scramble.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using sram::AddressScramble;
using sram::PhysicalAddress;

// --- the mapping itself -------------------------------------------------------

TEST(AddressScramble, IdentityMapsToItself) {
  const auto s = AddressScramble::identity(8, 16);
  EXPECT_TRUE(s.is_identity());
  EXPECT_EQ(s.to_physical(3, 7), (PhysicalAddress{3, 7}));
  EXPECT_EQ(s.to_logical(3, 7), (PhysicalAddress{3, 7}));
}

TEST(AddressScramble, XorFoldIsInvolutive) {
  const auto s = AddressScramble::xor_fold(8, 8, 0b101, 0b011);
  EXPECT_FALSE(s.is_identity());
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) {
      const auto p = s.to_physical(r, c);
      EXPECT_EQ(p.row, r ^ 0b101u);
      EXPECT_EQ(p.col, c ^ 0b011u);
      EXPECT_EQ(s.to_logical(p.row, p.col), (PhysicalAddress{r, c}));
    }
}

TEST(AddressScramble, BitReversalReversesRowBits) {
  const auto s = AddressScramble::row_bit_reversal(8, 4);
  EXPECT_EQ(s.to_physical(1, 0).row, 4u);  // 001 -> 100
  EXPECT_EQ(s.to_physical(3, 0).row, 6u);  // 011 -> 110
  EXPECT_EQ(s.to_physical(7, 0).row, 7u);  // 111 -> 111
  EXPECT_EQ(s.to_physical(2, 3).col, 3u);  // columns untouched
}

TEST(AddressScramble, RoundTripForAllFactories) {
  for (const auto& s :
       {AddressScramble::identity(16, 8),
        AddressScramble::xor_fold(16, 8, 9, 5),
        AddressScramble::row_bit_reversal(16, 8),
        AddressScramble::custom({1, 0, 3, 2}, {2, 0, 1})}) {
    for (std::size_t r = 0; r < s.rows(); ++r)
      for (std::size_t c = 0; c < s.col_groups(); ++c) {
        const auto p = s.to_physical(r, c);
        EXPECT_EQ(s.to_logical(p.row, p.col), (PhysicalAddress{r, c}));
      }
  }
}

TEST(AddressScramble, RejectsInvalidMaps) {
  EXPECT_THROW(AddressScramble::custom({0, 0}, {0}), Error);   // duplicate
  EXPECT_THROW(AddressScramble::custom({0, 2}, {0}), Error);   // out of range
  EXPECT_THROW(AddressScramble::xor_fold(6, 4, 4, 0), Error);  // leaves range
  EXPECT_THROW(AddressScramble::row_bit_reversal(6, 4), Error);// not pow2
  EXPECT_THROW(AddressScramble::identity(8, 4).to_physical(8, 0), Error);
}

// --- the descrambled LP order ---------------------------------------------------

TEST(ScrambleOrder, IdentityYieldsCanonicalOrder) {
  const auto order =
      march::wlawl_logical_order(AddressScramble::identity(4, 8));
  EXPECT_TRUE(order.is_word_line_after_word_line());
}

TEST(ScrambleOrder, PhysicalImageIsWordLineAfterWordLine) {
  for (const auto& scramble :
       {AddressScramble::xor_fold(8, 8, 5, 3),
        AddressScramble::row_bit_reversal(8, 8),
        AddressScramble::custom({3, 1, 0, 2}, {1, 0, 3, 2})}) {
    const auto order = march::wlawl_logical_order(scramble);
    // Mapping each logical address through the scramble must reproduce the
    // physical row-major walk.
    std::size_t i = 0;
    for (const auto& logical : order.sequence()) {
      const auto p = scramble.to_physical(logical.row, logical.col);
      EXPECT_EQ(p.row, i / scramble.col_groups());
      EXPECT_EQ(p.col, i % scramble.col_groups());
      ++i;
    }
    // And it is still a legal DOF-1 permutation (validated on build) that
    // is generally NOT the canonical logical order.
    if (!scramble.is_identity()) {
      EXPECT_FALSE(order.is_word_line_after_word_line());
    }
  }
}

// End-to-end: a physically-ordered LP run equals what a BIST would get by
// issuing the descrambled logical sequence — same coverage, same energy.
TEST(ScrambleOrder, LpRunThroughScrambleMatchesDirectPhysicalRun) {
  const auto scramble = AddressScramble::xor_fold(8, 8, 6, 5);
  const auto test = march::algorithms::march_c_minus();

  // Direct physical WLAWL run (what the array sees either way).
  core::SessionConfig direct;
  direct.geometry = {8, 8, 1};
  direct.mode = sram::Mode::kLowPowerTest;
  core::TestSession direct_session(direct);
  const auto reference = direct_session.run(test);

  // The descrambled order exists and is a permutation; the physical trace
  // it produces is exactly the canonical one, so the run is the same by
  // construction. Verify the claim on the order itself and run the
  // functional-mode session with it (LP mode would fall back, since the
  // session addresses the array in logical=physical space).
  const auto logical = march::wlawl_logical_order(scramble);
  core::SessionConfig via_logical = direct;
  via_logical.mode = sram::Mode::kFunctional;
  via_logical.order = logical;
  core::TestSession logical_session(via_logical);
  const auto logical_run = logical_session.run(test);

  EXPECT_EQ(reference.mismatches, 0u);
  EXPECT_EQ(logical_run.mismatches, 0u);
  EXPECT_EQ(reference.cycles, logical_run.cycles);
}

}  // namespace
