// Behavioural tests of the cycle-accurate SRAM array: data correctness,
// per-mode energy accounting, lazy bit-line decay, the faulty-swap hazard
// and the row-transition restore, RES bookkeeping and the alpha metric.
#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_reference.h"
#include "power/analytic.h"
#include "sram/array.h"
#include "util/error.h"
#include "util/stats.h"

namespace {

using namespace sramlp;
using power::EnergySource;
using sram::CycleCommand;
using sram::Mode;
using sram::Scan;
using sram::SramArray;
using sram::SramConfig;

SramConfig small_config(Mode mode, std::size_t rows = 8,
                        std::size_t cols = 8) {
  SramConfig cfg;
  cfg.geometry = {rows, cols, 1};
  cfg.mode = mode;
  return cfg;
}

CycleCommand write_cmd(std::size_t row, std::size_t col, bool value) {
  CycleCommand c;
  c.row = row;
  c.col_group = col;
  c.is_read = false;
  c.value = value;
  return c;
}

CycleCommand read_cmd(std::size_t row, std::size_t col, bool expected) {
  CycleCommand c;
  c.row = row;
  c.col_group = col;
  c.is_read = true;
  c.value = expected;
  return c;
}

// --- cell array ------------------------------------------------------------

TEST(CellArray, SetGetAndFill) {
  sram::CellArray cells({4, 4, 1});
  EXPECT_FALSE(cells.get(2, 3));
  cells.set(2, 3, true);
  EXPECT_TRUE(cells.get(2, 3));
  EXPECT_EQ(cells.popcount(), 1u);
  cells.fill(true);
  EXPECT_TRUE(cells.uniform(true));
  EXPECT_EQ(cells.popcount(), 16u);
  cells.fill(false);
  EXPECT_TRUE(cells.uniform(false));
}

TEST(CellArray, PopcountExactForNonMultipleOf64) {
  sram::CellArray cells({3, 7, 1});  // 21 cells
  cells.fill(true);
  EXPECT_EQ(cells.popcount(), 21u);
}

TEST(CellArray, BoundsChecked) {
  sram::CellArray cells({4, 4, 1});
  EXPECT_THROW(cells.get(4, 0), Error);
  EXPECT_THROW(cells.set(0, 4, true), Error);
}

// --- functional data path ----------------------------------------------------

TEST(SramArray, WriteThenReadBackEveryCell) {
  SramArray a(small_config(Mode::kFunctional));
  // Checkerboard write.
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      a.cycle(write_cmd(r, c, (r + c) % 2 == 0));
  std::uint64_t mismatches = 0;
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) {
      const auto res = a.cycle(read_cmd(r, c, (r + c) % 2 == 0));
      if (res.mismatch) ++mismatches;
      EXPECT_EQ(res.read_value, (r + c) % 2 == 0);
    }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(a.stats().reads, 64u);
  EXPECT_EQ(a.stats().writes, 64u);
}

TEST(SramArray, MismatchCountedWhenExpectationWrong) {
  SramArray a(small_config(Mode::kFunctional));
  a.cycle(write_cmd(0, 0, true));
  const auto res = a.cycle(read_cmd(0, 0, false));  // expects 0, cell has 1
  EXPECT_TRUE(res.mismatch);
  EXPECT_TRUE(res.read_value);
  EXPECT_EQ(a.stats().read_mismatches, 1u);
}

TEST(SramArray, PeekPokeBypassClocking) {
  SramArray a(small_config(Mode::kFunctional));
  a.poke(3, 3, true);
  EXPECT_TRUE(a.peek(3, 3));
  EXPECT_EQ(a.meter().cycles(), 0u);
}

// --- functional-mode energy ---------------------------------------------------

// Every functional read cycle must cost exactly the analytic model's Pr,
// and every write cycle Pw (the simulator and model share the constants).
TEST(SramArray, FunctionalCycleEnergyMatchesAnalyticModel) {
  const std::size_t rows = 16;
  const std::size_t cols = 16;
  SramArray a(small_config(Mode::kFunctional, rows, cols));
  const power::AnalyticModel model(a.config().tech, rows, cols);

  a.cycle(write_cmd(0, 0, true));
  const double e_write = a.meter().supply_total();
  EXPECT_NEAR(e_write, model.pw(), 1e-18);

  a.reset_measurements();
  a.cycle(read_cmd(0, 0, true));
  const double e_read = a.meter().supply_total();
  EXPECT_NEAR(e_read, model.pr(), 1e-18);
  EXPECT_GT(e_write, e_read);  // paper: writes cost more than reads
}

// Functional-mode energy must not depend on the address pattern.
TEST(SramArray, FunctionalEnergyIsAddressIndependent) {
  const auto run_pattern = [](const std::vector<std::size_t>& cols) {
    SramArray a(small_config(Mode::kFunctional));
    for (std::size_t c : cols) a.cycle(write_cmd(c % 8, c, true));
    return a.meter().supply_total();
  };
  const double seq = run_pattern({0, 1, 2, 3, 4, 5, 6, 7});
  const double rnd = run_pattern({5, 2, 7, 0, 3, 6, 1, 4});
  EXPECT_NEAR(seq, rnd, 1e-20);
}

TEST(SramArray, FunctionalPrechargeAllActive) {
  SramArray a(small_config(Mode::kFunctional));
  a.cycle(read_cmd(0, 0, false));
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_TRUE(a.precharge_was_active(c));
}

// --- low-power mode: pre-charge activity (Fig. 4) ----------------------------

TEST(SramArray, LpModeOnlySelectedAndFollowerPrecharged) {
  SramArray a(small_config(Mode::kLowPowerTest));
  a.cycle(read_cmd(0, 3, false));
  std::size_t active = 0;
  for (std::size_t c = 0; c < 8; ++c)
    if (a.precharge_was_active(c)) ++active;
  EXPECT_EQ(active, 2u);
  EXPECT_TRUE(a.precharge_was_active(3));
  EXPECT_TRUE(a.precharge_was_active(4));  // follower in ascending scan
}

TEST(SramArray, LpModeDescendingFollowerIsPreviousColumn) {
  SramArray a(small_config(Mode::kLowPowerTest));
  CycleCommand c = read_cmd(0, 3, false);
  c.scan = Scan::kDescending;
  a.cycle(c);
  EXPECT_TRUE(a.precharge_was_active(3));
  EXPECT_TRUE(a.precharge_was_active(2));
  EXPECT_FALSE(a.precharge_was_active(4));
}

TEST(SramArray, LpModeLastColumnHasNoFollower) {
  SramArray a(small_config(Mode::kLowPowerTest));
  a.cycle(read_cmd(0, 7, false));
  std::size_t active = 0;
  for (std::size_t c = 0; c < 8; ++c)
    if (a.precharge_was_active(c)) ++active;
  EXPECT_EQ(active, 1u);  // the paper: the last CS is not wrapped around
}

TEST(SramArray, RestoreCycleActivatesAllPrecharges) {
  SramArray a(small_config(Mode::kLowPowerTest));
  CycleCommand c = read_cmd(0, 7, false);
  c.restore_row_transition = true;
  a.cycle(c);
  for (std::size_t col = 0; col < 8; ++col)
    EXPECT_TRUE(a.precharge_was_active(col));
  EXPECT_EQ(a.stats().restore_cycles, 1u);
  EXPECT_GT(a.meter().total(EnergySource::kLpTestDriver), 0.0);
}

// --- bit-line decay -----------------------------------------------------------

// A deselected column's cell-driven bit-line follows the exponential decay
// of the technology model (paper Fig. 6a at array level).
TEST(SramArray, DeselectedColumnBitlineDecays) {
  auto cfg = small_config(Mode::kLowPowerTest, 4, 16);
  SramArray a(cfg);
  a.cycle(write_cmd(0, 0, true));  // operate on column 0, then move away
  const double vdd = cfg.tech.vdd;
  double previous = vdd;
  for (std::size_t c = 1; c < 8; ++c) {
    a.cycle(write_cmd(0, c, true));
    const double v = a.bitline_low_side_voltage(0);
    EXPECT_LE(v, previous + 1e-12);
    previous = v;
  }
  // After 7 cycles at duty 0.5 / tau 3: v = vdd * exp(-7*0.5/3).
  const double expected =
      vdd * std::exp(-7.0 * a.config().wordline_duty /
                     cfg.tech.decay_tau_cycles);
  EXPECT_NEAR(a.bitline_low_side_voltage(0), expected, 0.02 * vdd);
}

TEST(SramArray, FunctionalBitlinesStayPrecharged) {
  SramArray a(small_config(Mode::kFunctional));
  for (std::size_t c = 0; c < 8; ++c) a.cycle(write_cmd(0, c, true));
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_NEAR(a.bitline_low_side_voltage(c), a.config().tech.vdd, 1e-9);
}

// --- faulty swap hazard (Fig. 6c / Fig. 7) ------------------------------------

// Without the restore, entering the next row lets discharged bit-lines
// overwrite opposite-valued cells.
TEST(SramArray, RowEntryWithoutRestoreSwapsOpposingCells) {
  const std::size_t cols = 16;
  auto cfg = small_config(Mode::kLowPowerTest, 2, cols);
  cfg.row_transition_restore = false;
  SramArray a(cfg);
  // Row 1 holds the complement of what row 0's cells will drive.
  for (std::size_t c = 0; c < cols; ++c) a.poke(1, c, false);
  // Walk row 0 writing '1' everywhere (drives BL low on deselect), then
  // hop to row 1 without a restore cycle.
  for (std::size_t c = 0; c < cols; ++c) a.cycle(write_cmd(0, c, true));
  const auto res = a.cycle(read_cmd(1, 0, false));
  // All sufficiently-discharged columns of row 1 flipped to '1'; the
  // recently-visited columns near the row's end are still too high to
  // overpower their cells (the paper's "few of them not completely
  // discharged").
  EXPECT_GT(res.faulty_swaps, 0u);
  EXPECT_GT(a.stats().faulty_swaps, 4u);
  EXPECT_LT(a.stats().faulty_swaps, cols);
  for (std::size_t c = 1; c < 6; ++c)
    EXPECT_TRUE(a.peek(1, c)) << "column " << c << " should have swapped";
  EXPECT_FALSE(a.peek(1, cols - 1)) << "last column decayed only briefly";
}

TEST(SramArray, RowEntryAfterRestoreCausesNoSwaps) {
  auto cfg = small_config(Mode::kLowPowerTest, 2, 8);
  SramArray a(cfg);
  for (std::size_t c = 0; c < 8; ++c) a.poke(1, c, false);
  for (std::size_t c = 0; c < 8; ++c) {
    CycleCommand cmd = write_cmd(0, c, true);
    cmd.restore_row_transition = (c == 7);  // last op on the row
    a.cycle(cmd);
  }
  a.cycle(read_cmd(1, 0, false));
  EXPECT_EQ(a.stats().faulty_swaps, 0u);
  for (std::size_t c = 0; c < 8; ++c) EXPECT_FALSE(a.peek(1, c));
}

// Cells matching the bit-line-implied value are reinforced, not corrupted.
TEST(SramArray, MatchingCellsAreNotSwapped) {
  auto cfg = small_config(Mode::kLowPowerTest, 2, 8);
  cfg.row_transition_restore = false;
  SramArray a(cfg);
  for (std::size_t c = 0; c < 8; ++c) a.poke(1, c, true);  // same value
  for (std::size_t c = 0; c < 8; ++c) a.cycle(write_cmd(0, c, true));
  a.cycle(read_cmd(1, 0, true));
  EXPECT_EQ(a.stats().faulty_swaps, 0u);
}

// Functional mode never swaps: every bit-line is held at VDD.
TEST(SramArray, FunctionalModeNeverSwaps) {
  SramArray a(small_config(Mode::kFunctional, 2, 8));
  for (std::size_t c = 0; c < 8; ++c) a.poke(1, c, false);
  for (std::size_t c = 0; c < 8; ++c) a.cycle(write_cmd(0, c, true));
  a.cycle(read_cmd(1, 0, false));
  EXPECT_EQ(a.stats().faulty_swaps, 0u);
}

// --- LP-mode energy vs the analytic model --------------------------------------

TEST(SramArray, LpSavesEnergyPerCycle) {
  const std::size_t rows = 4;
  const std::size_t cols = 64;
  const auto run = [&](Mode mode) {
    SramArray a(small_config(mode, rows, cols));
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) {
        CycleCommand cmd = write_cmd(r, c, true);
        cmd.restore_row_transition = mode == Mode::kLowPowerTest &&
                                     c == cols - 1 && r != rows - 1;
        a.cycle(cmd);
      }
    return a.energy_per_cycle();
  };
  const double pf = run(Mode::kFunctional);
  const double plpt = run(Mode::kLowPowerTest);
  EXPECT_LT(plpt, pf);
}

// --- RES bookkeeping and alpha ---------------------------------------------------

TEST(SramArray, FunctionalResCountsAllUnselectedColumns) {
  SramArray a(small_config(Mode::kFunctional, 4, 16));
  a.cycle(read_cmd(0, 0, false));
  EXPECT_EQ(a.stats().full_res_column_cycles, 15u);
  a.cycle(read_cmd(0, 1, false));
  EXPECT_EQ(a.stats().full_res_column_cycles, 30u);
}

TEST(SramArray, LpResCountsOnlyFollower) {
  SramArray a(small_config(Mode::kLowPowerTest, 4, 16));
  a.cycle(read_cmd(0, 0, false));
  EXPECT_EQ(a.stats().full_res_column_cycles, 1u);
}

// Paper §5 source 4: alpha, the average number of stressed cells per cycle
// in LP mode (follower + decaying tail), lies in (2, 10).
TEST(SramArray, AlphaWithinPaperBounds) {
  const std::size_t rows = 8;
  const std::size_t cols = 64;
  SramArray a(small_config(Mode::kLowPowerTest, rows, cols));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      CycleCommand cmd = write_cmd(r, c, true);
      cmd.restore_row_transition = c == cols - 1 && r != rows - 1;
      a.cycle(cmd);
    }
  const double alpha = a.stats().alpha_post_op();
  EXPECT_GT(alpha, core::paper_claims::kAlphaLow);
  EXPECT_LT(alpha, core::paper_claims::kAlphaHigh);
  // The total including pre-operation decay is larger but same order.
  EXPECT_GE(a.stats().alpha_total(), alpha);
  EXPECT_LT(a.stats().alpha_total(), 20.0);
}

// Decay stress spends bit-line charge, not supply energy.
TEST(SramArray, DecayStressExcludedFromSupply) {
  SramArray a(small_config(Mode::kLowPowerTest, 2, 16));
  for (std::size_t c = 0; c < 16; ++c) a.cycle(write_cmd(0, c, true));
  const double stress =
      a.meter().total(EnergySource::kBitlineDecayStress);
  EXPECT_GT(stress, 0.0);
  double sum = 0.0;
  for (const auto& e : a.meter().breakdown())
    if (power::info(e.source).supply_drawn) sum += e.energy_j;
  EXPECT_NEAR(sum, a.meter().supply_total(), 1e-20);
}

// --- word-oriented extension -----------------------------------------------------

TEST(SramArray, WordOrientedWritesWholeWord) {
  SramConfig cfg;
  cfg.geometry = {4, 16, 4};  // 4 bits per word, 4 groups
  cfg.mode = Mode::kFunctional;
  SramArray a(cfg);
  a.cycle(write_cmd(1, 2, true));  // group 2 = columns 8..11
  for (std::size_t c = 8; c < 12; ++c) EXPECT_TRUE(a.peek(1, c));
  EXPECT_FALSE(a.peek(1, 7));
  EXPECT_FALSE(a.peek(1, 12));
}

TEST(SramArray, WordOrientedLpPrechargesTwoGroups) {
  SramConfig cfg;
  cfg.geometry = {4, 16, 4};
  cfg.mode = Mode::kLowPowerTest;
  SramArray a(cfg);
  a.cycle(read_cmd(0, 1, false));
  std::size_t active = 0;
  for (std::size_t c = 0; c < 16; ++c)
    if (a.precharge_was_active(c)) ++active;
  EXPECT_EQ(active, 8u);  // selected group + follower group
}

// --- configuration validation ------------------------------------------------------

TEST(SramArray, RejectsBadConfig) {
  SramConfig cfg = small_config(Mode::kFunctional);
  cfg.wordline_duty = 0.0;
  EXPECT_THROW(SramArray{cfg}, Error);
  cfg = small_config(Mode::kFunctional);
  cfg.swap_threshold_frac = 1.0;
  EXPECT_THROW(SramArray{cfg}, Error);
  cfg = small_config(Mode::kFunctional);
  cfg.geometry = {4, 4, 3};  // cols not divisible by word width
  EXPECT_THROW(SramArray{cfg}, Error);
}

TEST(SramArray, RejectsOutOfRangeAccess) {
  SramArray a(small_config(Mode::kFunctional));
  EXPECT_THROW(a.cycle(read_cmd(8, 0, false)), Error);
  EXPECT_THROW(a.cycle(read_cmd(0, 8, false)), Error);
}

TEST(SramArray, ModeSwitchResetsBitlines) {
  SramArray a(small_config(Mode::kLowPowerTest, 2, 8));
  for (std::size_t c = 0; c < 8; ++c) a.cycle(write_cmd(0, c, true));
  EXPECT_LT(a.bitline_low_side_voltage(0), a.config().tech.vdd);
  a.set_mode(Mode::kFunctional);
  EXPECT_NEAR(a.bitline_low_side_voltage(0), a.config().tech.vdd, 1e-12);
}

}  // namespace
