// Concurrency stress for the steal/cache/service layers.  These tests are
// written for ThreadSanitizer (the `tsan` CI job builds them with
// -DSRAMLP_SANITIZE=thread): they hammer the exact APIs the service calls
// from its connection threads — StealQueue lease/complete/abandon/fail,
// ResultCache get/put with LRU eviction and spill re-reads, service
// shutdown racing live submissions — and a signal storm that turns the
// EINTR paths in io/framing.cpp from dead code into the common case.
//
// Everything is seeded and self-checking: whatever interleaving the
// scheduler picks, every index must be computed, every cache hit must be
// byte-exact, and every service answer must equal the single-process
// document.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dist/result_cache.h"
#include "dist/service.h"
#include "dist/steal_queue.h"
#include "march/algorithms.h"
#include "util/error.h"

namespace {

namespace fs = std::filesystem;
using namespace sramlp;
using dist::JobSpec;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("sramlp_stress_test_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

// --- StealQueue under contention ---------------------------------------------

// N threads fight over one queue, each rolling per-lease dice between
// completing, failing (requeue) and abandoning (connection-death requeue,
// sometimes holding several leases first).  The invariants cannot depend
// on the interleaving: every shard completes exactly once, every index is
// computed by whoever completed its shard, and the requeue counter agrees
// with the requeues the threads themselves performed.
TEST(StealQueueStress, ConcurrentLeaseCompleteAbandonFail) {
  constexpr std::size_t kIndices = 600;
  constexpr std::size_t kThreads = 4;
  constexpr unsigned kRetries = 1u << 20;  // never exhaust a fail budget

  dist::StealQueue queue(iota_indices(kIndices), /*points_per_shard=*/2);
  const std::size_t shard_count = queue.stats().shard_count;

  std::atomic<std::size_t> observed_requeues{0};
  std::mutex done_mutex;
  std::set<std::size_t> completed_indices;  // union over all threads

  auto worker = [&](std::uint64_t worker_id) {
    std::mt19937 rng(static_cast<unsigned>(0xD1CE + worker_id));
    std::uniform_int_distribution<int> dice(0, 99);
    std::set<std::size_t> mine;
    while (true) {
      std::optional<dist::StealShard> shard = queue.lease(worker_id);
      if (!shard) {
        if (queue.done()) break;
        std::this_thread::yield();
        continue;
      }
      const int roll = dice(rng);
      if (roll < 10) {
        // Worker "reports failure": shard goes back for someone else.
        ASSERT_TRUE(queue.fail(shard->id, kRetries));
        observed_requeues.fetch_add(1, std::memory_order_relaxed);
      } else if (roll < 20) {
        // Connection death, possibly holding several leases at once.
        std::size_t held = 1;
        while (held < 3) {
          if (!queue.lease(worker_id)) break;
          ++held;
        }
        ASSERT_EQ(queue.abandon(worker_id), held);
        observed_requeues.fetch_add(held, std::memory_order_relaxed);
      } else {
        queue.complete(shard->id);
        mine.insert(shard->indices.begin(), shard->indices.end());
      }
    }
    std::lock_guard<std::mutex> lock(done_mutex);
    completed_indices.insert(mine.begin(), mine.end());
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back(worker, static_cast<std::uint64_t>(t + 1));
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(queue.done());
  const auto stats = queue.stats();
  EXPECT_EQ(stats.completed, shard_count);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.leased, 0u);
  EXPECT_EQ(stats.requeues, observed_requeues.load());

  // A requeued shard can be completed by its new owner while the original
  // worker's completion set already holds it — either way, the union must
  // be exactly the full index set.
  EXPECT_EQ(completed_indices.size(), kIndices);
  EXPECT_EQ(*completed_indices.begin(), 0u);
  EXPECT_EQ(*completed_indices.rbegin(), kIndices - 1);
}

// --- ResultCache under contention --------------------------------------------

std::string stress_payload(std::uint64_t key) {
  // Distinct, content-checkable and long enough that a torn read would
  // show (spans several internal read chunks when spilled).
  std::string payload = "{\"key\": " + std::to_string(key) + ", \"blob\": \"";
  for (int i = 0; i < 64; ++i)
    payload += "k" + std::to_string(key * 31 + static_cast<std::uint64_t>(i));
  payload += "\"}";
  return payload;
}

// Mixed get/put/contains/stats traffic from several threads over a key
// space much larger than the LRU capacity, so hits are served from both
// tiers (memory and spill re-read) concurrently with insertions and
// evictions.  Every hit must be byte-exact, and a fresh cache on the same
// spill file must reload every key exactly.
TEST(ResultCacheStress, ConcurrentGetPutSpillStaysByteExact) {
  const TempDir dir("cache");
  const std::string spill = dir.str() + "/spill.jsonl";
  constexpr std::uint64_t kKeys = 64;
  constexpr std::size_t kThreads = 4;
  constexpr int kOpsPerThread = 2000;

  {
    dist::ResultCache::Options options;
    options.capacity = 8;  // force constant eviction -> spill re-reads
    options.spill_path = spill;
    dist::ResultCache cache(options);

    auto churn = [&](unsigned seed) {
      std::mt19937 rng(seed);
      std::uniform_int_distribution<std::uint64_t> pick_key(0, kKeys - 1);
      std::uniform_int_distribution<int> dice(0, 99);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::uint64_t key = pick_key(rng);
        const int roll = dice(rng);
        if (roll < 45) {
          cache.put(key, stress_payload(key));
        } else if (roll < 90) {
          std::optional<std::string> hit = cache.get(key);
          if (hit) {
            ASSERT_EQ(*hit, stress_payload(key));
          }
        } else if (roll < 95) {
          (void)cache.contains(key);
        } else {
          (void)cache.stats();
        }
      }
    };

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t)
      threads.emplace_back(churn, static_cast<unsigned>(0xCAFE + t));
    for (std::thread& t : threads) t.join();

    const auto stats = cache.stats();
    EXPECT_GT(stats.insertions, 0u);
    EXPECT_EQ(stats.entries, kKeys);  // key space is small; all were put
  }

  // Warm restart: the spill file is the authoritative store, so a new
  // cache must serve every key byte-exactly, whatever eviction order the
  // racing threads produced.
  dist::ResultCache::Options options;
  options.capacity = 4;
  options.spill_path = spill;
  dist::ResultCache reloaded(options);
  EXPECT_EQ(reloaded.stats().loaded, kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    std::optional<std::string> hit = reloaded.get(key);
    ASSERT_TRUE(hit.has_value()) << "key " << key << " lost from spill";
    EXPECT_EQ(*hit, stress_payload(key));
  }
}

// --- Service shutdown racing live traffic ------------------------------------

JobSpec stress_sweep_job() {
  JobSpec job;
  job.kind = JobSpec::Kind::kSweep;
  job.grid.geometries = {{8, 16, 1}, {4, 32, 1}};
  job.grid.backgrounds = {sram::DataBackground::solid0(),
                          sram::DataBackground::checkerboard()};
  job.grid.algorithms = {march::algorithms::mats_plus()};
  return job;  // 4 points
}

// Submitters loop jobs while a racer thread pulls the plug: request_stop()
// lands with jobs in flight, workers mid-steal and submitters mid-stream.
// Completed submissions must be correct; interrupted ones must surface as
// sramlp::Error, never a hang or a torn document.
TEST(ServiceStress, ShutdownRacesLiveSubmissionsAndWorkers) {
  const JobSpec job = stress_sweep_job();

  dist::Service::Options options;
  options.points_per_shard = 1;
  options.cache.capacity = 4;
  dist::Service service(options);
  service.start();
  const std::string address = service.address();

  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w)
    workers.emplace_back(
        [address] { dist::ServiceWorker().run(address); });

  std::atomic<std::size_t> completed{0};
  std::atomic<bool> stop_submitting{false};
  std::string expected;  // first completed document; later ones must match
  std::mutex expected_mutex;

  auto submitter = [&] {
    while (!stop_submitting.load()) {
      try {
        dist::SubmitResult result = dist::submit_job(address, job);
        {
          std::lock_guard<std::mutex> lock(expected_mutex);
          if (expected.empty()) expected = result.document;
          ASSERT_EQ(result.document, expected);
        }
        completed.fetch_add(1);
      } catch (const Error&) {
        // The racer won: the service stopped under this submission.
        break;
      }
    }
  };
  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s) submitters.emplace_back(submitter);

  // Let real traffic build up, then pull the plug mid-flight.
  while (completed.load() < 3) std::this_thread::yield();
  service.request_stop();
  stop_submitting.store(true);

  service.wait();
  for (std::thread& t : submitters) t.join();
  for (std::thread& t : workers) t.join();

  EXPECT_GE(completed.load(), 3u);
  EXPECT_FALSE(expected.empty());
}

// --- EINTR signal storm ------------------------------------------------------

std::atomic<std::uint64_t> g_signals_delivered{0};

extern "C" void stress_sigusr1_handler(int) {
  g_signals_delivered.fetch_add(1, std::memory_order_relaxed);
}

/// Installs a no-op SIGUSR1 handler WITHOUT SA_RESTART for its lifetime,
/// so every slow syscall in the process can fail with EINTR instead of
/// being transparently restarted — the harshest setting for the retry
/// loops in io/framing.cpp.
class SignalStorm {
 public:
  SignalStorm() {
    struct sigaction action {};
    action.sa_handler = stress_sigusr1_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately NOT SA_RESTART
    sigaction(SIGUSR1, &action, &previous_);
    storm_ = std::thread([this] {
      while (!stop_.load()) {
        ::kill(::getpid(), SIGUSR1);
        // Tight enough to land inside send/recv/connect windows, loose
        // enough that handlers are not the only thing that runs.
        ::usleep(100);
      }
    });
  }
  ~SignalStorm() {
    stop_.store(true);
    storm_.join();
    sigaction(SIGUSR1, &previous_, nullptr);
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread storm_;
  struct sigaction previous_ {};
};

// A full service round-trip (connect, submit, steal, stream, merge) under
// a constant hail of EINTRs must produce the exact same bytes as a calm
// run.  Before connect_socket() handled EINTR this failed as a spurious
// "connection failed"; a missing retry in a send/recv loop shows up as a
// torn frame or a short document.
TEST(ServiceStress, SignalStormDoesNotPerturbResults) {
  const JobSpec job = stress_sweep_job();

  // Calm reference first, same process, no storm.
  std::string calm_document;
  {
    dist::Service::Options options;
    options.points_per_shard = 1;
    dist::Service service(options);
    service.start();
    const std::string address = service.address();
    std::thread worker([address] { dist::ServiceWorker().run(address); });
    calm_document = dist::submit_job(address, job).document;
    service.request_stop();
    service.wait();
    worker.join();
  }
  ASSERT_FALSE(calm_document.empty());

  // Analytic rounds are fast (single-digit ms); keep running them until
  // the storm has demonstrably landed a few hundred signals inside them.
  SignalStorm storm;
  for (int round = 0;
       round < 200 && g_signals_delivered.load() < 500; ++round) {
    dist::Service::Options options;
    options.points_per_shard = 1;
    dist::Service service(options);
    service.start();
    const std::string address = service.address();
    std::thread worker([address] { dist::ServiceWorker().run(address); });
    const dist::SubmitResult result = dist::submit_job(address, job);
    service.request_stop();
    service.wait();
    worker.join();
    EXPECT_EQ(result.document, calm_document) << "round " << round;
  }
  // The storm must actually have stormed for the rounds to mean anything.
  EXPECT_GT(g_signals_delivered.load(), 100u);
}

}  // namespace
