// WaveformWriter: the per-cycle energy export sink.
//  * Attaching one must not move a bit of the run's totals (it forces the
//    per-cycle metering path, whose arithmetic is the reference).
//  * Records reconstruct the run: per-run supply sums match the meter
//    total (up to summation order), runs split automatically when the
//    meter's cycle counter restarts, idle blocks stay single records.
//  * CSV and JSONL formats, and the tee with a PowerTrace — the trace
//    summary must stay bit-identical with the waveform attached.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "march/algorithms.h"
#include "power/waveform.h"

namespace {

using namespace sramlp;

struct CsvRecord {
  std::uint64_t run = 0;
  std::uint64_t cycle = 0;
  std::uint64_t span = 0;
  double supply_j = 0.0;
};

std::vector<CsvRecord> read_csv(const std::string& path,
                                std::string* header) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::getline(in, *header);
  std::vector<CsvRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    CsvRecord r;
    char comma;
    ls >> r.run >> comma >> r.cycle >> comma >> r.span >> comma >> r.supply_j;
    EXPECT_FALSE(ls.fail()) << line;
    records.push_back(r);
  }
  return records;
}

core::SessionConfig small_lp_config() {
  core::SessionConfig cfg;
  cfg.geometry = {8, 16, 1};
  cfg.mode = sram::Mode::kLowPowerTest;
  return cfg;
}

TEST(Waveform, TotalsUnchangedAndRecordsSumToTheMeter) {
  const auto test = march::algorithms::march_c_minus();
  const auto base = core::TestSession(small_lp_config()).run(test);

  const std::string path = testing::TempDir() + "sramlp_waveform.csv";
  core::SessionResult first, second;
  {
    power::WaveformWriter writer(path, power::WaveformFormat::kCsv);
    core::SessionConfig cfg = small_lp_config();
    cfg.waveform_sink = &writer;
    // Two identical runs on fresh sessions: each resets its meter, so the
    // writer must split them into run ordinals 0 and 1 on its own.
    first = core::TestSession(cfg).run(test);
    second = core::TestSession(cfg).run(test);
    writer.finish();
    EXPECT_GT(writer.records_written(), 0u);
  }
  // Bit-identical totals: the waveform is an observer.
  EXPECT_EQ(first.supply_energy_j, base.supply_energy_j);
  EXPECT_EQ(second.supply_energy_j, base.supply_energy_j);
  EXPECT_EQ(first.cycles, base.cycles);

  std::string header;
  const auto records = read_csv(path, &header);
  EXPECT_EQ(header.rfind("run,cycle,span,supply_j", 0), 0u) << header;
  ASSERT_FALSE(records.empty());
  double sums[2] = {0.0, 0.0};
  std::uint64_t max_run = 0;
  std::uint64_t prev_cycle[2] = {0, 0};
  for (const CsvRecord& r : records) {
    ASSERT_LE(r.run, 1u);
    max_run = std::max(max_run, r.run);
    sums[r.run] += r.supply_j;
    EXPECT_GE(r.span, 1u);
    if (r.cycle != 0) {  // cycles are monotone within a run
      EXPECT_GT(r.cycle, prev_cycle[r.run]);
    }
    prev_cycle[r.run] = r.cycle;
  }
  EXPECT_EQ(max_run, 1u);  // both runs landed, split automatically
  // Same additions in a different order: equal up to rounding.
  EXPECT_NEAR(sums[0], base.supply_energy_j,
              1e-9 * base.supply_energy_j);
  EXPECT_NEAR(sums[1], base.supply_energy_j,
              1e-9 * base.supply_energy_j);
}

TEST(Waveform, IdleBlocksStaySingleSpanRecords) {
  const auto test = march::algorithms::march_g_with_delays();
  const std::string path = testing::TempDir() + "sramlp_waveform_idle.csv";
  {
    power::WaveformWriter writer(path, power::WaveformFormat::kCsv);
    core::SessionConfig cfg = small_lp_config();
    cfg.waveform_sink = &writer;
    core::TestSession(cfg).run(test);
  }
  std::string header;
  const auto records = read_csv(path, &header);
  // March G's Del elements idle for many cycles; they must appear as a
  // few span>1 records, not one record per idle cycle.
  std::uint64_t idle_records = 0, idle_cycles = 0, total_cycles = 0;
  for (const CsvRecord& r : records) {
    total_cycles += r.span;
    if (r.span > 1) {
      ++idle_records;
      idle_cycles += r.span;
    }
  }
  EXPECT_GT(idle_records, 0u);
  EXPECT_GT(idle_cycles, idle_records * 10);
  EXPECT_LT(records.size(), total_cycles);
}

TEST(Waveform, JsonlRecordsAreObjectsPerLine) {
  const auto test = march::algorithms::mats_plus();
  const std::string path = testing::TempDir() + "sramlp_waveform.jsonl";
  std::uint64_t written = 0;
  {
    power::WaveformWriter writer(path, power::WaveformFormat::kJsonl);
    core::SessionConfig cfg = small_lp_config();
    cfg.waveform_sink = &writer;
    core::TestSession(cfg).run(test);
    writer.finish();
    written = writer.records_written();
  }
  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"supply_j\":"), std::string::npos);
  }
  EXPECT_EQ(lines, written);
  EXPECT_GT(lines, 0u);
}

TEST(Waveform, TeeWithTraceKeepsTheTraceBitIdentical) {
  const auto test = march::algorithms::march_c_minus();
  core::SessionConfig cfg = small_lp_config();
  cfg.trace = power::TraceConfig{.window_cycles = 32, .keep_windows = true};
  const auto traced_only = core::TestSession(cfg).run(test);
  ASSERT_TRUE(traced_only.trace.has_value());

  const std::string path = testing::TempDir() + "sramlp_waveform_tee.csv";
  std::uint64_t written = 0;
  core::SessionResult both;
  {
    power::WaveformWriter writer(path, power::WaveformFormat::kCsv);
    cfg.waveform_sink = &writer;
    both = core::TestSession(cfg).run(test);
    writer.finish();
    written = writer.records_written();
  }
  EXPECT_GT(written, 0u);
  ASSERT_TRUE(both.trace.has_value());
  EXPECT_EQ(both.supply_energy_j, traced_only.supply_energy_j);
  EXPECT_EQ(both.trace->peak_window_energy_j,
            traced_only.trace->peak_window_energy_j);
  EXPECT_EQ(both.trace->peak_window, traced_only.trace->peak_window);
  EXPECT_EQ(both.trace->window_supply_j, traced_only.trace->window_supply_j);
  ASSERT_EQ(both.trace->elements.size(), traced_only.trace->elements.size());
  for (std::size_t e = 0; e < both.trace->elements.size(); ++e)
    EXPECT_EQ(both.trace->elements[e].supply_energy_j,
              traced_only.trace->elements[e].supply_energy_j)
        << "element " << e;
}

}  // namespace
