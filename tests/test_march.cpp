// Unit tests for the March DSL: operations, elements, parser, the
// algorithm library (validated against the paper's Table 1 counts), and
// data-background complementation.
#include <gtest/gtest.h>

#include "core/paper_reference.h"
#include "march/algorithms.h"
#include "march/parser.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using march::Direction;
using march::Operation;

// --- operations -----------------------------------------------------------

TEST(Operation, Classification) {
  EXPECT_TRUE(march::is_read(Operation::kR0));
  EXPECT_TRUE(march::is_read(Operation::kR1));
  EXPECT_TRUE(march::is_write(Operation::kW0));
  EXPECT_TRUE(march::is_write(Operation::kW1));
  EXPECT_FALSE(march::value_of(Operation::kR0));
  EXPECT_TRUE(march::value_of(Operation::kW1));
}

TEST(Operation, ComplementFlipsDataOnly) {
  EXPECT_EQ(march::complement(Operation::kR0), Operation::kR1);
  EXPECT_EQ(march::complement(Operation::kW1), Operation::kW0);
  EXPECT_EQ(march::complement(march::complement(Operation::kR1)),
            Operation::kR1);
}

TEST(Operation, Names) {
  EXPECT_EQ(march::to_string(Operation::kR0), "r0");
  EXPECT_EQ(march::to_string(Operation::kW1), "w1");
}

// --- parser ----------------------------------------------------------------

TEST(Parser, ParsesMarchCMinus) {
  const auto t = march::parse_march(
      "c-", "{ B(w0); U(r0,w1); U(r1,w0); D(r0,w1); D(r1,w0); B(r0) }");
  ASSERT_EQ(t.elements().size(), 6u);
  EXPECT_EQ(t.elements()[0].direction, Direction::kEither);
  EXPECT_EQ(t.elements()[1].direction, Direction::kUp);
  EXPECT_EQ(t.elements()[3].direction, Direction::kDown);
  EXPECT_EQ(t.elements()[1].ops,
            (std::vector<Operation>{Operation::kR0, Operation::kW1}));
}

TEST(Parser, AcceptsAlternativeDirectionGlyphs) {
  const auto t = march::parse_march("alt", "{ ~(w0); ^(r0); v(r0) }");
  EXPECT_EQ(t.elements()[0].direction, Direction::kEither);
  EXPECT_EQ(t.elements()[1].direction, Direction::kUp);
  EXPECT_EQ(t.elements()[2].direction, Direction::kDown);
}

TEST(Parser, IsCaseInsensitiveForOps) {
  const auto t = march::parse_march("case", "{ U(R0,W1) }");
  EXPECT_EQ(t.elements()[0].ops,
            (std::vector<Operation>{Operation::kR0, Operation::kW1}));
}

TEST(Parser, RoundTripsThroughNotation) {
  const auto original = march::algorithms::march_ss();
  const auto reparsed = march::parse_march("copy", original.str());
  ASSERT_EQ(reparsed.elements().size(), original.elements().size());
  for (std::size_t i = 0; i < original.elements().size(); ++i) {
    EXPECT_EQ(reparsed.elements()[i].direction,
              original.elements()[i].direction);
    EXPECT_EQ(reparsed.elements()[i].ops, original.elements()[i].ops);
  }
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(march::parse_march("x", "U(r0)"), Error);       // no braces
  EXPECT_THROW(march::parse_march("x", "{ U() }"), Error);     // empty ops
  EXPECT_THROW(march::parse_march("x", "{ Q(r0) }"), Error);   // bad dir
  EXPECT_THROW(march::parse_march("x", "{ U(r2) }"), Error);   // bad value
  EXPECT_THROW(march::parse_march("x", "{ U(x0) }"), Error);   // bad op
  EXPECT_THROW(march::parse_march("x", "{ U(r0) } junk"), Error);
  EXPECT_THROW(march::parse_march("x", "{ U(r0 w1) }"), Error);
}

TEST(Parser, ErrorMessagesCarryOffset) {
  try {
    march::parse_march("x", "{ U(r0); Q(r1) }");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

// --- stats vs the paper's Table 1 -------------------------------------------

TEST(Algorithms, Table1CountsMatchThePaper) {
  const auto tests = march::algorithms::table1();
  ASSERT_EQ(tests.size(), core::kTable1.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    const auto& row = core::kTable1[i];
    const march::MarchStats s = tests[i].stats();
    EXPECT_EQ(tests[i].name(), row.algorithm);
    EXPECT_EQ(s.elements, row.elements) << row.algorithm;
    EXPECT_EQ(s.operations, row.operations) << row.algorithm;
    EXPECT_EQ(s.reads, row.reads) << row.algorithm;
    EXPECT_EQ(s.writes, row.writes) << row.algorithm;
  }
}

TEST(Algorithms, ClassicCountsFromTheLiterature) {
  // van de Goor's op counts (complexity in N).
  EXPECT_EQ(march::algorithms::mats().stats().operations, 4);
  EXPECT_EQ(march::algorithms::mats_pp().stats().operations, 6);
  EXPECT_EQ(march::algorithms::march_x().stats().operations, 6);
  EXPECT_EQ(march::algorithms::march_y().stats().operations, 8);
  EXPECT_EQ(march::algorithms::march_a().stats().operations, 15);
  EXPECT_EQ(march::algorithms::march_b().stats().operations, 17);
  EXPECT_EQ(march::algorithms::march_lr().stats().operations, 14);
}

TEST(Algorithms, AllAreWellFormed) {
  for (const auto& t : march::algorithms::all()) {
    EXPECT_FALSE(t.name().empty());
    EXPECT_GE(t.elements().size(), 1u);
    const auto s = t.stats();
    EXPECT_EQ(s.reads + s.writes, s.operations) << t.name();
    // Every March test starts by initialising the array with writes.
    EXPECT_TRUE(march::is_write(t.elements()[0].ops[0])) << t.name();
  }
}

TEST(Algorithms, CountsConvertToPowerModelInput) {
  const auto c = march::algorithms::march_g().counts();
  EXPECT_EQ(c.name, "March G");
  EXPECT_EQ(c.elements, 7);
  EXPECT_EQ(c.operations, 23);
  EXPECT_NO_THROW(c.validate());
}

// --- complementation ---------------------------------------------------------

TEST(MarchTest, ComplementedFlipsEveryOperation) {
  const auto t = march::algorithms::mats_plus();
  const auto inv = t.complemented();
  ASSERT_EQ(inv.elements().size(), t.elements().size());
  for (std::size_t e = 0; e < t.elements().size(); ++e)
    for (std::size_t o = 0; o < t.elements()[e].ops.size(); ++o)
      EXPECT_EQ(inv.elements()[e].ops[o],
                march::complement(t.elements()[e].ops[o]));
  // Stats are invariant under complementation except read/write polarity.
  EXPECT_EQ(inv.stats().operations, t.stats().operations);
  EXPECT_EQ(inv.stats().reads, t.stats().reads);
}

TEST(MarchTest, NotationPrintsAllElements) {
  const auto t = march::algorithms::mats_plus();
  EXPECT_EQ(t.str(), "{ B(w0); U(r0,w1); D(r1,w0) }");
}

TEST(MarchTest, RejectsEmptyConstruction) {
  EXPECT_THROW(march::MarchTest("empty", {}), Error);
  march::MarchElement e;
  EXPECT_THROW(march::MarchTest("no-ops", {e}), Error);
}


TEST(Algorithms, MarchIcMinusSharesCMinusOperations) {
  // March iC- keeps March C-'s element structure; it differs only in
  // requiring the fast-column (word-line-after-word-line) order to
  // sensitise ADOFs, which is an addressing property, not an op change.
  const auto ic = march::algorithms::march_ic_minus();
  const auto c = march::algorithms::march_c_minus();
  ASSERT_EQ(ic.elements().size(), c.elements().size());
  for (std::size_t i = 0; i < c.elements().size(); ++i) {
    EXPECT_EQ(ic.elements()[i].direction, c.elements()[i].direction);
    EXPECT_EQ(ic.elements()[i].ops, c.elements()[i].ops);
  }
}

}  // namespace
