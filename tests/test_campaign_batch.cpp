// The word-parallel multi-fault campaign batcher:
//  * plan_batches partitioning rules (victim disjointness, dRDF
//    history-class segregation, aggressor-cell fallbacks, batch cap);
//  * BatchFaultSet attribution (per-member mismatch counts, nothing
//    unattributed);
//  * the correctness anchor: batched campaigns produce bit-identical
//    CampaignReport verdicts (detection + mismatch counts per entry) to
//    the per-fault path, across modes, algorithms with pauses, awkward
//    geometries and word-oriented arrays — while running far fewer
//    sessions.
#include <gtest/gtest.h>

#include "core/fault_campaign.h"
#include "core/session.h"
#include "faults/batch.h"
#include "march/algorithms.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using core::CampaignReport;
using core::CampaignRunner;
using core::SessionConfig;
using faults::FaultKind;
using faults::FaultSpec;

FaultSpec at(FaultKind kind, std::size_t row, std::size_t col) {
  FaultSpec f;
  f.kind = kind;
  f.victim = {row, col};
  return f;
}

// --- plan_batches ------------------------------------------------------------

TEST(BatchPlan, DisjointVictimsShareOneBatch) {
  const std::vector<FaultSpec> specs = {
      at(FaultKind::kStuckAt0, 0, 0), at(FaultKind::kStuckAt1, 1, 1),
      at(FaultKind::kReadDestructive, 2, 2),
      at(FaultKind::kIncorrectRead, 3, 3)};
  const auto plan = faults::plan_batches(specs);
  ASSERT_EQ(plan.batches.size(), 1u);
  EXPECT_EQ(plan.batches[0].size(), 4u);
  EXPECT_TRUE(plan.fallback.empty());
  EXPECT_EQ(plan.session_pairs(), 1u);
}

TEST(BatchPlan, DuplicateVictimsSplitIntoSeparateBatches) {
  const std::vector<FaultSpec> specs = {
      at(FaultKind::kStuckAt0, 2, 2), at(FaultKind::kStuckAt1, 2, 2),
      at(FaultKind::kWriteDisturb, 2, 2)};
  const auto plan = faults::plan_batches(specs);
  EXPECT_EQ(plan.batches.size(), 3u);
  EXPECT_TRUE(plan.fallback.empty());
}

// dRDF's write-then-read history is keyed on operation coordinates only,
// so victim-disjoint co-members cannot perturb it — dRDF batches rather
// than falling back, but in batches of its own history class so the
// every-row hook cost stays off the word-parallel batches.
TEST(BatchPlan, DynamicReadDestructiveBatchesInItsOwnClass) {
  const std::vector<FaultSpec> specs = {
      at(FaultKind::kStuckAt0, 0, 0),
      at(FaultKind::kDynamicReadDestructive, 1, 1),
      at(FaultKind::kStuckAt1, 2, 2),
      at(FaultKind::kDynamicReadDestructive, 3, 3)};
  const auto plan = faults::plan_batches(specs);
  EXPECT_TRUE(plan.fallback.empty());
  ASSERT_EQ(plan.batches.size(), 2u);
  EXPECT_EQ(plan.batches[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(plan.batches[1], (std::vector<std::size_t>{1, 3}));
}

TEST(BatchPlan, CouplingAggressorCellCollisionFallsBack) {
  FaultSpec cf = at(FaultKind::kCouplingIdempotent, 4, 4);
  cf.aggressor = {5, 0};  // exactly another fault's victim cell
  const std::vector<FaultSpec> specs = {cf, at(FaultKind::kStuckAt0, 5, 0),
                                        at(FaultKind::kStuckAt1, 6, 0)};
  const auto plan = faults::plan_batches(specs);
  ASSERT_EQ(plan.fallback.size(), 1u);
  EXPECT_EQ(plan.fallback[0], 0u);

  // A victim that merely shares the aggressor's ROW touches a different
  // cell: under cell-level analysis that no longer forces a fallback.
  FaultSpec row_mate = at(FaultKind::kCouplingIdempotent, 4, 4);
  row_mate.aggressor = {5, 4};  // row 5 hosts a victim, but at column 0
  const auto plan2 = faults::plan_batches(
      {row_mate, at(FaultKind::kStuckAt0, 5, 0), at(FaultKind::kStuckAt1, 6, 0)});
  EXPECT_TRUE(plan2.fallback.empty());
  ASSERT_EQ(plan2.batches.size(), 1u);
  EXPECT_EQ(plan2.batches[0].size(), 3u);

  // Same-row column-neighbour aggressors (the library's construction)
  // batch as long as no victim sits on the aggressor cell itself.
  FaultSpec free_cf = at(FaultKind::kCouplingIdempotent, 4, 4);
  free_cf.aggressor = {4, 5};
  const auto plan3 = faults::plan_batches(
      {free_cf, at(FaultKind::kStuckAt0, 5, 0)});
  EXPECT_TRUE(plan3.fallback.empty());
  ASSERT_EQ(plan3.batches.size(), 1u);
  EXPECT_EQ(plan3.batches[0].size(), 2u);
}

TEST(BatchPlan, MaxBatchCapsMembership) {
  std::vector<FaultSpec> specs;
  for (std::size_t i = 0; i < 10; ++i)
    specs.push_back(at(FaultKind::kStuckAt0, i, i % 8));
  const auto plan = faults::plan_batches(specs, 4);
  EXPECT_EQ(plan.batches.size(), 3u);  // 4 + 4 + 2
  for (const auto& b : plan.batches) EXPECT_LE(b.size(), 4u);
}

TEST(BatchPlan, EveryIndexAppearsExactlyOnce) {
  const auto specs = faults::standard_fault_library({16, 16, 1}, 23);
  const auto plan = faults::plan_batches(specs);
  std::vector<int> seen(specs.size(), 0);
  for (const auto& b : plan.batches)
    for (const std::size_t i : b) ++seen[i];
  for (const std::size_t i : plan.fallback) ++seen[i];
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "fault " << i;
}

// At campaign scale the plan must collapse the session count by a lot more
// than the acceptance floor of 3x.
TEST(BatchPlan, CollapsesSessionsAtCampaignScale) {
  const auto specs = faults::standard_fault_library({256, 256, 1}, 7, 8);
  EXPECT_GE(specs.size(), 100u);
  const auto plan = faults::plan_batches(specs);
  EXPECT_LE(plan.session_pairs() * 3, specs.size())
      << plan.session_pairs() << " session pairs for " << specs.size()
      << " faults";
  // Cell-level aggressor analysis: on the standard library (pseudo-random
  // victims, column-neighbour aggressors) no coupling fault should share
  // its aggressor cell with another victim, and dRDF rides in batches of
  // its own history class — nothing is left to fall back.  (Row-level
  // analysis used to send most coupling faults per-fault: 18 session pairs
  // on this library; cell-level got it to 9; batching dRDF gets it below
  // that.)
  EXPECT_TRUE(plan.fallback.empty());
  EXPECT_LE(plan.session_pairs(), 8u);
}

// --- BatchFaultSet -----------------------------------------------------------

TEST(BatchFaultSet, RejectsSharedVictims) {
  EXPECT_THROW(faults::BatchFaultSet({at(FaultKind::kStuckAt0, 1, 1),
                                      at(FaultKind::kStuckAt1, 1, 1)}),
               Error);
}

TEST(BatchFaultSet, AttributesMismatchesPerMember) {
  // SA0 at (1,1) mismatches on r1 expectations; the healthy fault at (2,2)
  // must collect nothing.
  faults::BatchFaultSet set(
      {at(FaultKind::kStuckAt0, 1, 1), at(FaultKind::kStuckAt1, 2, 2)});
  SessionConfig cfg;
  cfg.geometry = {8, 8, 1};
  core::TestSession session(cfg);
  session.attach_fault_model(&set);
  const auto result = session.run(march::algorithms::march_c_minus());
  EXPECT_GT(result.mismatches, 0u);
  EXPECT_GT(set.mismatches_of(0), 0u);
  EXPECT_GT(set.mismatches_of(1), 0u);
  EXPECT_EQ(set.mismatches_of(0) + set.mismatches_of(1), result.mismatches);
  EXPECT_EQ(set.unattributed(), 0u);
}

// --- batched campaign parity -------------------------------------------------

void expect_reports_identical(const CampaignReport& per_fault,
                              const CampaignReport& batched,
                              const std::string& where) {
  ASSERT_EQ(per_fault.entries.size(), batched.entries.size()) << where;
  for (std::size_t i = 0; i < per_fault.entries.size(); ++i) {
    const auto& a = per_fault.entries[i];
    const auto& b = batched.entries[i];
    EXPECT_EQ(a.spec.kind, b.spec.kind) << where << " entry " << i;
    EXPECT_TRUE(a.spec.victim == b.spec.victim) << where << " entry " << i;
    EXPECT_EQ(a.detected_functional, b.detected_functional)
        << where << ": " << a.spec.describe();
    EXPECT_EQ(a.detected_low_power, b.detected_low_power)
        << where << ": " << a.spec.describe();
    EXPECT_EQ(a.mismatches_functional, b.mismatches_functional)
        << where << ": " << a.spec.describe();
    EXPECT_EQ(a.mismatches_low_power, b.mismatches_low_power)
        << where << ": " << a.spec.describe();
  }
}

// The correctness anchor: identical verdicts on the expanded standard
// library, across algorithms (with and without pauses) and geometries
// (including the awkward 33x17), with the batched path running a fraction
// of the sessions.
TEST(BatchedCampaign, VerdictParityWithPerFaultPath) {
  const CampaignRunner per_fault(CampaignRunner::Options{});
  CampaignRunner::Options opts;
  opts.batched = true;
  const CampaignRunner batched(opts);

  for (const sram::Geometry geometry :
       {sram::Geometry{8, 8, 1}, sram::Geometry{33, 17, 1}}) {
    SessionConfig cfg;
    cfg.geometry = geometry;
    const auto library = faults::standard_fault_library(geometry, 11);
    for (const auto& test :
         {march::algorithms::march_c_minus(), march::algorithms::march_ss(),
          march::algorithms::march_g_with_delays()}) {
      const std::string where = std::to_string(geometry.rows) + "x" +
                                std::to_string(geometry.cols) + " " +
                                test.name();
      const auto a = per_fault.run(cfg, test, library);
      const auto b = batched.run(cfg, test, library);
      expect_reports_identical(a, b, where);
      EXPECT_EQ(a.session_pairs, library.size()) << where;
      EXPECT_LT(b.session_pairs, library.size()) << where;
      EXPECT_GT(b.batch_sessions, 0u) << where;
    }
  }
}

// Word-oriented arrays read whole groups per cycle; attribution must split
// a word mismatch between the members owning each bad bit.
TEST(BatchedCampaign, VerdictParityOnWordOrientedArrays) {
  SessionConfig cfg;
  cfg.geometry = {16, 32, 4};
  const auto library = faults::standard_fault_library(cfg.geometry, 19);
  const auto test = march::algorithms::march_c_minus();
  const auto a = CampaignRunner(CampaignRunner::Options{}).run(
      cfg, test, library);
  CampaignRunner::Options opts;
  opts.batched = true;
  const auto b = CampaignRunner(opts).run(cfg, test, library);
  expect_reports_identical(a, b, "16x32 w4");
  EXPECT_LT(b.session_pairs, a.session_pairs);
}

// The attribution channel is engine-agnostic: the per-column reference
// engine must produce the same batched report as the bitsliced default.
TEST(BatchedCampaign, VerdictParityAcrossColumnEngines) {
  SessionConfig cfg;
  cfg.geometry = {8, 8, 1};
  const auto library = faults::standard_fault_library(cfg.geometry, 11);
  const auto test = march::algorithms::march_c_minus();
  CampaignRunner::Options opts;
  opts.batched = true;
  const auto fast = CampaignRunner(opts).run(cfg, test, library);
  cfg.column_model = sram::ColumnModel::kPerColumnReference;
  const auto ref = CampaignRunner(opts).run(cfg, test, library);
  expect_reports_identical(ref, fast, "reference engine");
  EXPECT_EQ(ref.session_pairs, fast.session_pairs);
}

// With the Fig. 7 restore disabled, faulty swaps spread per-fault data
// corruption across rows and batch members would interact: the runner must
// fall back to one session pair per fault (and therefore stay identical).
TEST(BatchedCampaign, RestoreDisabledFallsBackToPerFault) {
  SessionConfig cfg;
  cfg.geometry = {8, 8, 1};
  cfg.row_transition_restore = false;
  const auto library = faults::standard_fault_library(cfg.geometry, 11);
  const auto test = march::algorithms::march_c_minus();
  CampaignRunner::Options opts;
  opts.batched = true;
  const auto b = CampaignRunner(opts).run(cfg, test, library);
  EXPECT_EQ(b.session_pairs, library.size());
  EXPECT_EQ(b.batch_sessions, 0u);
  const auto a = CampaignRunner(CampaignRunner::Options{}).run(
      cfg, test, library);
  expect_reports_identical(a, b, "restore-off");
}

}  // namespace
