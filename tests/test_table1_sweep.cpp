// Parameterised regression over all five Table 1 algorithms at a mid-size
// geometry: the cycle simulator must track the §5 closed-form model for
// both PF and PLPT, restores must match row transitions exactly, and the
// PRR ordering trend (row-transition frequency #elm/#ops) must hold.
#include <gtest/gtest.h>

#include "core/session.h"
#include "march/algorithms.h"
#include "power/analytic.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using sram::Mode;

constexpr std::size_t kRows = 64;
constexpr std::size_t kCols = 256;

class Table1Algorithm : public ::testing::TestWithParam<int> {
 protected:
  march::MarchTest test() const {
    return march::algorithms::table1()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(Table1Algorithm, SimulatorTracksClosedForm) {
  const auto t = test();
  SessionConfig cfg;
  cfg.geometry = {kRows, kCols, 1};
  const auto cmp = TestSession::compare_modes(cfg, t);
  const power::AnalyticModel model(power::TechnologyParams::tech_0p13um(),
                                   kRows, kCols);
  const auto counts = t.counts();
  EXPECT_NEAR(cmp.functional.energy_per_cycle_j, model.pf(counts),
              1e-3 * model.pf(counts))
      << t.name();
  EXPECT_NEAR(cmp.low_power.energy_per_cycle_j, model.plpt(counts),
              2e-2 * model.plpt(counts))
      << t.name();
  EXPECT_NEAR(cmp.prr, model.prr(counts), 0.01) << t.name();
}

TEST_P(Table1Algorithm, RestoresEqualRowTransitions) {
  const auto t = test();
  SessionConfig cfg;
  cfg.geometry = {kRows, kCols, 1};
  cfg.mode = Mode::kLowPowerTest;
  TestSession session(cfg);
  const auto r = session.run(t);
  EXPECT_EQ(r.stats.restore_cycles, r.stats.row_transitions) << t.name();
  EXPECT_EQ(r.stats.faulty_swaps, 0u) << t.name();
  EXPECT_EQ(r.mismatches, 0u) << t.name();
}

TEST_P(Table1Algorithm, CycleCountMatchesComplexity) {
  const auto t = test();
  SessionConfig cfg;
  cfg.geometry = {kRows, kCols, 1};
  TestSession session(cfg);
  const auto r = session.run(t);
  EXPECT_EQ(r.cycles, static_cast<std::uint64_t>(t.stats().operations) *
                          kRows * kCols)
      << t.name();
}

std::string table1_name(const ::testing::TestParamInfo<int>& param) {
  static const char* names[] = {"MarchCminus", "MarchSS", "MATSplus",
                                "MarchSR", "MarchG"};
  return names[param.param];
}

INSTANTIATE_TEST_SUITE_P(AllFive, Table1Algorithm, ::testing::Range(0, 5),
                         table1_name);

// The dominant ordering driver in our model: higher #elm/#ops (more
// frequent row transitions + follower recharges) costs PRR.
TEST(Table1Trend, RowTransitionFrequencyOrdersPrr) {
  SessionConfig cfg;
  cfg.geometry = {kRows, kCols, 1};
  const double prr_mats =
      TestSession::compare_modes(cfg, march::algorithms::mats_plus()).prr;
  const double prr_ss =
      TestSession::compare_modes(cfg, march::algorithms::march_ss()).prr;
  // MATS+ has #elm/#ops = 0.60, March SS 0.27: SS must save more.
  EXPECT_GT(prr_ss, prr_mats);
}

}  // namespace
