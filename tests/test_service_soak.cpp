// Sweep-service soak: the ISSUE's two load-bearing claims, end to end.
//
//  * Resilience under churn — a service with several concurrent
//    submitters (duplicate and distinct jobs interleaved) and a worker
//    that dies mid-shard still hands EVERY submitter a document
//    byte-identical to the single-process run, with the dead worker's
//    leases requeued onto the survivors.
//
//  * Scheduling — on the same job with one deliberately slow worker out
//    of four, the dynamic steal queue beats the static-plan Coordinator
//    on wall-clock, because the slow worker just steals fewer shards
//    instead of stalling a fixed quarter of the grid.  Both wall-clock
//    numbers are printed (the PR's acceptance evidence).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "dist/coordinator.h"
#include "dist/job.h"
#include "dist/service.h"
#include "march/algorithms.h"

// gcc spells sanitizer presence __SANITIZE_*__; clang answers through
// __has_feature.  Either way the timing assertion below is off.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SRAMLP_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SRAMLP_UNDER_SANITIZER 1
#endif
#endif

namespace {

namespace fs = std::filesystem;
using namespace sramlp;
using dist::JobSpec;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("sramlp_service_soak_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

JobSpec sweep_job_a() {
  JobSpec job;
  job.kind = JobSpec::Kind::kSweep;
  job.grid.geometries = {{8, 16, 1}, {4, 32, 1}, {6, 24, 2}};
  job.grid.backgrounds = {sram::DataBackground::solid0(),
                          sram::DataBackground::checkerboard()};
  job.grid.algorithms = {march::algorithms::mats_plus(),
                         march::algorithms::march_c_minus()};
  return job;  // 12 points
}

JobSpec sweep_job_b() {
  JobSpec job = sweep_job_a();
  job.grid.backgrounds = {sram::DataBackground::solid1()};
  return job;  // 6 points, disjoint from job A's backgrounds
}

JobSpec campaign_job() {
  JobSpec job;
  job.kind = JobSpec::Kind::kCampaign;
  job.config.geometry = {8, 8, 1};
  job.test = march::algorithms::march_c_minus();
  job.faults = faults::standard_fault_library(job.config.geometry, 11);
  return job;
}

std::string single_document(const JobSpec& job) {
  dist::MergedResult merged;
  merged.kind = job.kind;
  if (job.kind == JobSpec::Kind::kSweep) {
    merged.sweep = core::SweepRunner().run(job.grid);
  } else {
    core::CampaignRunner::Options options;
    options.batched = true;
    core::CampaignReport report =
        core::CampaignRunner(options).run(job.config, *job.test, job.faults);
    merged.campaign.algorithm = report.algorithm;
    merged.campaign.entries = std::move(report.entries);
  }
  return dist::merged_document(merged);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(ServiceSoak, ConcurrentSubmittersSurviveAWorkerDeath) {
  dist::Service::Options options;
  options.points_per_shard = 2;
  dist::Service service(options);
  service.start();
  const std::string address = service.address();

  // One suicidal worker: no artificial delay, so it races ahead, grabs
  // shards first, streams three points and drops its connection mid-shard
  // (no shard_done).  Two slow-but-healthy workers inherit its requeued
  // leases.
  std::vector<std::thread> workers;
  {
    dist::ServiceWorker::Options dying;
    dying.die_after_points = 3;
    workers.emplace_back(
        [address, dying] { dist::ServiceWorker(dying).run(address); });
    dist::ServiceWorker::Options healthy;
    healthy.slow_point_us = 2000;
    for (int w = 0; w < 2; ++w)
      workers.emplace_back(
          [address, healthy] { dist::ServiceWorker(healthy).run(address); });
  }

  const std::vector<JobSpec> jobs = {sweep_job_a(), sweep_job_b(),
                                     campaign_job()};
  std::vector<std::string> references;
  for (const JobSpec& job : jobs) references.push_back(single_document(job));

  // Six submitters: every job twice, concurrently — the duplicates land as
  // in-flight dedups or job-cache hits depending on timing, both of which
  // must still produce the reference bytes.
  std::vector<std::string> documents(6);
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < documents.size(); ++s)
    submitters.emplace_back([&, s] {
      documents[s] = dist::submit_job(address, jobs[s % jobs.size()],
                                      /*connect_timeout_ms=*/10000)
                         .document;
    });
  for (std::thread& t : submitters) t.join();

  for (std::size_t s = 0; s < documents.size(); ++s)
    EXPECT_EQ(documents[s], references[s % references.size()])
        << "submitter " << s;

  const dist::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, 6u);
  EXPECT_EQ(stats.jobs_completed + stats.job_cache_hits +
                stats.jobs_deduplicated,
            6u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  EXPECT_GE(stats.workers_lost, 1u);     // the suicide was noticed...
  EXPECT_GE(stats.shard_requeues, 1u);   // ...and its leases requeued
  // Every duplicate was answered without recomputing: exactly one
  // execution of each distinct point (dead-worker replays excluded by
  // first-wins filling, so executed counts can exceed, but filled points
  // cannot).
  std::printf("soak: %llu points executed, %llu requeues, "
              "cache hit-rate %.2f\n",
              static_cast<unsigned long long>(stats.points_executed),
              static_cast<unsigned long long>(stats.shard_requeues),
              stats.cache.hit_rate());

  service.request_stop();
  service.wait();
  for (std::thread& t : workers) t.join();
}

// The acceptance comparison: 4 workers, one of them slow, same ~40-point
// job.  Static plan = the slow worker owns a fixed quarter of the grid and
// the job waits for it.  Steal queue = the slow worker only hurts the few
// shards it actually steals.
TEST(ServiceSoak, StealQueueBeatsStaticPlanWithOneSlowWorker) {
  JobSpec job;
  job.kind = JobSpec::Kind::kSweep;
  job.grid.geometries = {{4, 16, 1}, {8, 16, 1}, {4, 32, 1}, {8, 32, 1},
                         {6, 24, 2}, {4, 24, 2}, {8, 24, 1}, {4, 20, 1},
                         {6, 16, 1}, {6, 32, 2}};
  job.grid.backgrounds = {sram::DataBackground::solid0(),
                          sram::DataBackground::checkerboard()};
  job.grid.algorithms = {march::algorithms::mats_plus(),
                         march::algorithms::march_c_minus()};
  ASSERT_EQ(job.size(), 40u);
  const std::string reference = single_document(job);
  constexpr std::uint64_t kSlowPointUs = 5000;  // a 5 ms/point slow host

  // Static plan: 4 contiguous shards on 4 fork-run workers; shard 0 (10
  // points) runs on the slow host -> >= 50 ms critical path by design.
  TempDir dir("static");
  dist::Coordinator::Options static_options;
  static_options.shards = 4;
  static_options.max_workers = 4;
  static_options.work_dir = dir.str();
  static_options.slow_shard = 0;
  static_options.slow_point_us = kSlowPointUs;
  const auto static_start = std::chrono::steady_clock::now();
  const dist::MergedResult static_merged =
      dist::Coordinator(static_options).run(job);
  const double static_seconds = seconds_since(static_start);
  EXPECT_EQ(dist::merged_document(static_merged), reference);

  // Steal queue: the same slow host is one of 4 service workers, but now
  // it can only hold one 2-point shard at a time.
  dist::Service::Options service_options;
  service_options.points_per_shard = 2;
  dist::Service service(service_options);
  service.start();
  const std::string address = service.address();
  std::vector<std::thread> workers;
  std::vector<std::size_t> stolen(4, 0);
  for (int w = 0; w < 4; ++w)
    workers.emplace_back([&, w] {
      dist::ServiceWorker::Options options;
      if (w == 0) options.slow_point_us = kSlowPointUs;
      stolen[w] = dist::ServiceWorker(options).run(address);
    });
  const auto steal_start = std::chrono::steady_clock::now();
  const dist::SubmitResult steal_result =
      dist::submit_job(address, job, 10000);
  const double steal_seconds = seconds_since(steal_start);
  EXPECT_EQ(steal_result.document, reference);
  EXPECT_FALSE(steal_result.cache_hit);

  std::printf("scheduling: static plan %.1f ms, steal queue %.1f ms "
              "(%.1fx) on %zu points, slow worker at %llu us/point\n",
              static_seconds * 1e3, steal_seconds * 1e3,
              static_seconds / steal_seconds, job.size(),
              static_cast<unsigned long long>(kSlowPointUs));
  service.request_stop();
  service.wait();
  for (std::thread& t : workers) t.join();
  std::printf("scheduling: points stolen per worker (worker 0 slow): "
              "%zu %zu %zu %zu\n",
              stolen[0], stolen[1], stolen[2], stolen[3]);
  // Wall-clock comparisons are meaningless under sanitizer
  // instrumentation: TSan taxes the sync-heavy steal protocol far more
  // than the fork/exec static plan.  The sanitized build still runs both
  // schedulers above (that is the race coverage); only the timing claim
  // is gated out.
#ifndef SRAMLP_UNDER_SANITIZER
  EXPECT_LT(steal_seconds, static_seconds)
      << "dynamic stealing should beat the static plan with a slow worker";
#endif
}

}  // namespace
