// Full-stack integration tests at the paper's 512x512 scale: Table 1
// regression for one algorithm (the others run in the bench), the
// pre-charge power share bound, alpha, and row-transition bookkeeping.
#include <gtest/gtest.h>

#include "core/paper_reference.h"
#include "core/session.h"
#include "march/algorithms.h"
#include "march/parser.h"
#include "power/analytic.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using sram::Mode;

SessionConfig paper_config() {
  SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  return cfg;
}

// Table 1 regression at full size for the cheapest algorithm (MATS+,
// 5N operations); the bench reproduces all five rows.
TEST(Integration, Table1MatsPlusPrrAtFullSize) {
  const auto cmp = TestSession::compare_modes(
      paper_config(), march::algorithms::mats_plus());
  double paper = 0.0;
  for (const auto& row : core::kTable1)
    if (std::string(row.algorithm) == "MATS+") paper = row.prr;
  EXPECT_NEAR(cmp.prr, paper, 0.025);
  EXPECT_GT(cmp.prr, 0.45);
  EXPECT_LT(cmp.prr, 0.55);

  // The simulator and the closed-form §5 model agree.
  const power::AnalyticModel model(power::TechnologyParams::tech_0p13um(),
                                   512, 512);
  const auto counts = march::algorithms::mats_plus().counts();
  EXPECT_NEAR(cmp.functional.energy_per_cycle_j, model.pf(counts),
              1e-3 * model.pf(counts));
  EXPECT_NEAR(cmp.low_power.energy_per_cycle_j, model.plpt(counts),
              2e-2 * model.plpt(counts));
}

// Pre-charge-related activity dominates functional-mode test power but
// stays under the 70-80 % total share the paper cites from [8].
TEST(Integration, FunctionalPrechargeShareWithinCitedBound) {
  SessionConfig cfg = paper_config();
  cfg.mode = Mode::kFunctional;
  TestSession s(cfg);
  const auto r = s.run(march::algorithms::mats_plus());
  const double share = r.meter.precharge_total() / r.meter.supply_total();
  EXPECT_GT(share, 0.40);
  EXPECT_LT(share, core::paper_claims::kPrechargeShareUpper);
}

// In LP mode the remaining pre-charge activity collapses to a few percent.
TEST(Integration, LpPrechargeShareCollapses) {
  SessionConfig cfg = paper_config();
  cfg.mode = Mode::kLowPowerTest;
  TestSession s(cfg);
  const auto r = s.run(march::algorithms::mats_plus());
  const double share = r.meter.precharge_total() / r.meter.supply_total();
  EXPECT_LT(share, 0.20);
}

// Paper §5 source 4 at full scale: alpha in (2, 10).
TEST(Integration, AlphaWithinBoundsAtFullSize) {
  SessionConfig cfg = paper_config();
  cfg.mode = Mode::kLowPowerTest;
  TestSession s(cfg);
  const auto r = s.run(march::algorithms::mats_plus());
  EXPECT_GT(r.stats.alpha_post_op(), core::paper_claims::kAlphaLow);
  EXPECT_LT(r.stats.alpha_post_op(), core::paper_claims::kAlphaHigh);
}

// Paper §5 source 2: a one-operation element sees a row transition every
// #cols cycles; a four-operation element every 4 * #cols.
TEST(Integration, RowTransitionFrequencyMatchesFormula) {
  for (const auto& [notation, ops] :
       {std::pair{"{ B(w0) }", 1}, std::pair{"{ B(w0,w1,w0,w1) }", 4}}) {
    SessionConfig cfg = paper_config();
    cfg.mode = Mode::kLowPowerTest;
    TestSession s(cfg);
    const auto r = s.run(march::parse_march("probe", notation));
    ASSERT_GT(r.stats.row_transitions, 0u);
    const double period = static_cast<double>(r.cycles) /
                          static_cast<double>(r.stats.row_transitions + 1);
    EXPECT_NEAR(period, 512.0 * ops, 1.0) << notation;
  }
}

// The LPtest driver and control logic are negligible at full scale
// (paper §5 sources 3 and 5).
TEST(Integration, SecondOrderSourcesAreNegligible) {
  SessionConfig cfg = paper_config();
  cfg.mode = Mode::kLowPowerTest;
  TestSession s(cfg);
  const auto r = s.run(march::algorithms::mats_plus());
  const double total = r.meter.supply_total();
  EXPECT_LT(r.meter.total(power::EnergySource::kLpTestDriver), 1e-3 * total);
  EXPECT_LT(r.meter.total(power::EnergySource::kControlLogic), 1e-3 * total);
  EXPECT_LT(r.meter.total(power::EnergySource::kCellRes), 5e-3 * total);
}

}  // namespace
