// Tests of core::TestSession: cycle counts, restore scheduling, the LP
// addressing constraint (paper §4), data-background independence, mode
// result-equivalence (the paper's central correctness claim), and PRR.
#include <gtest/gtest.h>

#include "core/session.h"
#include "faults/models.h"
#include "march/algorithms.h"
#include "power/analytic.h"
#include "util/error.h"
#include "util/stats.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::SessionResult;
using core::TestSession;
using sram::Mode;

SessionConfig small_config(Mode mode, std::size_t rows = 8,
                           std::size_t cols = 8) {
  SessionConfig cfg;
  cfg.geometry = {rows, cols, 1};
  cfg.mode = mode;
  return cfg;
}

TEST(TestSession, CycleCountIsOpsTimesAddresses) {
  TestSession s(small_config(Mode::kFunctional));
  const auto result = s.run(march::algorithms::march_c_minus());
  EXPECT_EQ(result.cycles, 10u * 64u);  // 10 ops x 64 addresses
  EXPECT_EQ(result.mismatches, 0u);     // fault-free
  EXPECT_FALSE(result.detected());
}

TEST(TestSession, FaultFreeRunsPassForWholeLibrary) {
  for (const auto& test : march::algorithms::all()) {
    for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
      TestSession s(small_config(mode));
      const auto r = s.run(test);
      EXPECT_EQ(r.mismatches, 0u) << test.name() << " mode "
                                  << static_cast<int>(mode);
      EXPECT_EQ(r.stats.faulty_swaps, 0u) << test.name();
    }
  }
}

// Restore cycles: one per row hand-over inside each element plus the
// hand-overs between elements whose first row differs.
TEST(TestSession, RestoreCyclesMatchRowTransitions) {
  TestSession s(small_config(Mode::kLowPowerTest, 4, 8));
  const auto r = s.run(march::algorithms::march_c_minus());
  // Every row transition must have been preceded by a restore cycle:
  // transitions == restores (the test ends without a trailing restore).
  EXPECT_EQ(r.stats.restore_cycles, r.stats.row_transitions);
  EXPECT_GT(r.stats.restore_cycles, 0u);
  EXPECT_EQ(r.stats.faulty_swaps, 0u);
}

TEST(TestSession, FunctionalModeNeverIssuesRestores) {
  TestSession s(small_config(Mode::kFunctional, 4, 8));
  const auto r = s.run(march::algorithms::march_c_minus());
  EXPECT_EQ(r.stats.restore_cycles, 0u);
}

// Paper §4: LP mode with a non-word-line-after-word-line order must either
// fall back to functional mode or (strict) be rejected.
TEST(TestSession, LpWithWrongOrderFallsBack) {
  SessionConfig cfg = small_config(Mode::kLowPowerTest);
  cfg.order = march::AddressOrder::pseudo_random(8, 8, 3);
  TestSession s(cfg);
  const auto r = s.run(march::algorithms::mats_plus());
  EXPECT_TRUE(r.fell_back_to_functional);
  EXPECT_EQ(r.mode, Mode::kFunctional);
  EXPECT_EQ(r.mismatches, 0u);
}

TEST(TestSession, StrictLpWithWrongOrderThrows) {
  SessionConfig cfg = small_config(Mode::kLowPowerTest);
  cfg.order = march::AddressOrder::fast_row(8, 8);
  cfg.strict_lp_order = true;
  EXPECT_THROW(TestSession{cfg}, Error);
}

TEST(TestSession, FunctionalModeAcceptsAnyOrder) {
  SessionConfig cfg = small_config(Mode::kFunctional);
  cfg.order = march::AddressOrder::gray_code(8, 8);
  TestSession s(cfg);
  const auto r = s.run(march::algorithms::march_x());
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_FALSE(r.fell_back_to_functional);
}

TEST(TestSession, OrderGeometryMismatchRejected) {
  SessionConfig cfg = small_config(Mode::kFunctional, 8, 8);
  cfg.order = march::AddressOrder::word_line_after_word_line(4, 4);
  EXPECT_THROW(TestSession{cfg}, Error);
}

// The paper's data-background independence: the complemented test runs
// cleanly and consumes the same energy.
TEST(TestSession, InvertedBackgroundSameEnergyNoMismatch) {
  SessionConfig cfg = small_config(Mode::kLowPowerTest);
  TestSession normal(cfg);
  const auto a = normal.run(march::algorithms::march_c_minus());
  cfg.invert_background = true;
  TestSession inverted(cfg);
  const auto b = inverted.run(march::algorithms::march_c_minus());
  EXPECT_EQ(b.mismatches, 0u);
  EXPECT_NEAR(a.supply_energy_j, b.supply_energy_j,
              1e-6 * a.supply_energy_j);
}

// Central correctness claim: mode does not change what the test observes
// or leaves behind.
TEST(TestSession, ModesLeaveIdenticalArrayContents) {
  for (const auto& test : march::algorithms::table1()) {
    TestSession f(small_config(Mode::kFunctional));
    TestSession l(small_config(Mode::kLowPowerTest));
    f.run(test);
    l.run(test);
    for (std::size_t r = 0; r < 8; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        EXPECT_EQ(f.array().peek(r, c), l.array().peek(r, c))
            << test.name() << " cell (" << r << "," << c << ")";
  }
}

TEST(TestSession, LpModeUsesLessEnergy) {
  const auto cmp = TestSession::compare_modes(
      small_config(Mode::kFunctional, 8, 64),
      march::algorithms::march_c_minus());
  EXPECT_GT(cmp.prr, 0.0);
  EXPECT_LT(cmp.prr, 1.0);
  EXPECT_LT(cmp.low_power.supply_energy_j, cmp.functional.supply_energy_j);
  EXPECT_EQ(cmp.functional.cycles, cmp.low_power.cycles);
}

// The cycle simulator and the §5 closed-form model must agree on both PF
// and PLPT (they share every constant; the sim adds only partial-decay
// effects near row boundaries).
TEST(TestSession, SimulatorMatchesAnalyticModel) {
  const std::size_t rows = 16;
  const std::size_t cols = 128;
  const auto test = march::algorithms::march_c_minus();
  const auto cmp = TestSession::compare_modes(
      small_config(Mode::kFunctional, rows, cols), test);
  const power::AnalyticModel model(cmp.functional.meter.cycles() != 0
                                       ? power::TechnologyParams::tech_0p13um()
                                       : power::TechnologyParams::tech_0p13um(),
                                   rows, cols);
  const auto counts = test.counts();
  EXPECT_NEAR(cmp.functional.energy_per_cycle_j, model.pf(counts),
              1e-3 * model.pf(counts));
  EXPECT_NEAR(cmp.low_power.energy_per_cycle_j, model.plpt(counts),
              3e-2 * model.plpt(counts));
}

TEST(TestSession, DetectionLocationsRecorded) {
  SessionConfig cfg = small_config(Mode::kFunctional);
  TestSession s(cfg);
  s.array().poke(2, 3, true);  // pre-set garbage the init element will fix
  faults::FaultSet set(
      {faults::FaultSpec{.kind = faults::FaultKind::kStuckAt1,
                         .victim = {2, 3}}});
  s.attach_fault_model(&set);
  const auto r = s.run(march::algorithms::march_c_minus());
  EXPECT_TRUE(r.detected());
  ASSERT_FALSE(r.first_detections.empty());
  EXPECT_EQ(r.first_detections[0].row, 2u);
  EXPECT_EQ(r.first_detections[0].col_group, 3u);
  EXPECT_LE(r.first_detections.size(), core::kMaxFirstDetections);
}

// Word-oriented runs (paper §6 future work) behave like bit-oriented ones.
// The row must be wide enough for the saving to beat the follower-recharge
// overhead (the technique targets wide arrays).
TEST(TestSession, WordOrientedModesAgree) {
  SessionConfig cfg;
  cfg.geometry = {8, 128, 4};
  cfg.mode = Mode::kFunctional;
  const auto cmp = TestSession::compare_modes(
      cfg, march::algorithms::march_c_minus());
  EXPECT_EQ(cmp.functional.mismatches, 0u);
  EXPECT_EQ(cmp.low_power.mismatches, 0u);
  EXPECT_GT(cmp.prr, 0.0);
}

TEST(TestSession, WordOrientedPrrBelowBitOriented) {
  SessionConfig bit;
  bit.geometry = {8, 128, 1};
  SessionConfig word;
  word.geometry = {8, 128, 8};
  const auto t = march::algorithms::mats_plus();
  const double prr_bit = TestSession::compare_modes(bit, t).prr;
  const double prr_word = TestSession::compare_modes(word, t).prr;
  EXPECT_GT(prr_bit, prr_word);
}

// On a narrow array the low-power mode can even cost energy (the follower
// recharge dominates); the saving must grow into clear wins as the row
// widens — the crossover the geometry-sweep bench quantifies.
TEST(TestSession, SavingGrowsWithRowWidth) {
  const auto t = march::algorithms::march_c_minus();
  double last = -1.0;
  for (std::size_t cols : {16u, 64u, 256u}) {
    SessionConfig cfg;
    cfg.geometry = {8, cols, 1};
    const double prr = TestSession::compare_modes(cfg, t).prr;
    EXPECT_GT(prr, last) << cols;
    last = prr;
  }
  EXPECT_GT(last, 0.25);  // 256 columns already saves substantially
}

}  // namespace
