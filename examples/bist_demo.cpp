// BIST controller demonstration: the hardware view of the low-power test.
//
// Compiles a March test into the BIST micro-op ROM, steps the controller
// FSM cycle by cycle against the array, traces the LPtest mode line around
// a row hand-over, and prints the outcome registers — the flow a silicon
// bring-up engineer would script against the real block.
//
//   $ ./examples/bist_demo
#include <cstdio>
#include <exception>

#include "core/bist.h"
#include "march/algorithms.h"
#include "power/report.h"

int main() {
  using namespace sramlp;
  try {
    const auto test = march::algorithms::march_c_minus();
    const auto program = core::BistProgram::compile(test);
    std::printf("program: %s — %zu micro-ops in %zu element records\n",
                program.name().c_str(), program.rom().size(),
                program.elements().size());

    const sram::Geometry geometry{16, 16, 1};
    std::printf("expected test length on 16x16: %llu cycles\n\n",
                static_cast<unsigned long long>(
                    program.cycle_count(geometry.rows,
                                        geometry.col_groups())));

    sram::SramConfig array_config;
    array_config.geometry = geometry;
    array_config.mode = sram::Mode::kLowPowerTest;
    sram::SramArray array(array_config);

    core::BistController::Options options;
    options.mode = sram::Mode::kLowPowerTest;
    core::BistController bist(program, geometry, options);

    // Trace the LPtest line and the address stream around the first row
    // hand-over (the restore pulse is the single cycle where it drops).
    std::puts("cycle | addr(row,col) | op | LPtest | restore");
    for (int cycle = 0; cycle < 20 && !bist.done(); ++cycle) {
      const auto cmd = bist.peek();
      std::printf("%5d | (%2zu,%2zu)       | %s%d | %d      | %s\n", cycle,
                  cmd->row, cmd->col_group, cmd->is_read ? "r" : "w",
                  cmd->value ? 1 : 0, bist.lptest_level() ? 1 : 0,
                  cmd->restore_row_transition ? "PULSE" : "");
      bist.step(array);
    }

    // Run the rest to completion.
    const auto outcome = bist.run(array);
    std::printf("\noutcome: %llu cycles, fail latch = %d, fails = %llu, "
                "restore pulses = %llu\n",
                static_cast<unsigned long long>(outcome.cycles),
                outcome.fail_latch ? 1 : 0,
                static_cast<unsigned long long>(outcome.fails),
                static_cast<unsigned long long>(outcome.restore_pulses));
    std::printf("energy: %s\n",
                power::summary_line(array.meter()).c_str());
    return outcome.fail_latch ? 2 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bist_demo failed: %s\n", e.what());
    return 1;
  }
}
