// Device-level waveform export: the paper's Fig. 6 experiment as CSV.
//
// Simulates the Fig. 5 two-cell column at switch level and writes the node
// voltages to a CSV file (or stdout) for plotting, plus a quick terminal
// chart.  Choose the pre-charge scenario with the first argument.
//
//   $ ./examples/bitline_waveform [off|on|restore] [out.csv]
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>

#include "circuit/subcircuits.h"
#include "circuit/transient.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace sramlp;
  using namespace sramlp::circuit;
  try {
    ColumnConfig config;
    config.scenario = PrechargeScenario::kAlwaysOff;
    if (argc > 1 && std::strcmp(argv[1], "on") == 0)
      config.scenario = PrechargeScenario::kAlwaysOn;
    if (argc > 1 && std::strcmp(argv[1], "restore") == 0)
      config.scenario = PrechargeScenario::kRestoreAtHandover;

    const ColumnFixture fixture = build_column_fixture(config);

    TransientOptions options;
    options.t_end = fixture.t_end;
    options.dt = 0.2e-12;
    options.sample_every = 50e-12;
    const TransientResult result = simulate(
        fixture.circuit,
        {fixture.bl, fixture.blb, fixture.s0, fixture.sb0, fixture.s1,
         fixture.sb1},
        options);

    // CSV with all probed nodes on a shared time base.
    std::vector<const Waveform*> waves;
    for (const auto& w : result.waves()) waves.push_back(&w);
    const std::string csv = to_csv(waves);
    if (argc > 2) {
      std::ofstream out(argv[2]);
      out << csv;
      std::printf("wrote %zu samples to %s\n", result.waves()[0].size(),
                  argv[2]);
    } else {
      std::fputs(csv.c_str(), stdout);
    }

    // Terminal chart of the bit-line pair.
    util::Series bl{"BL", '*', {}, {}};
    util::Series blb{"BLB", '-', {}, {}};
    const auto& w_bl = result.wave("bl");
    const auto& w_blb = result.wave("blb");
    for (std::size_t i = 0; i < w_bl.size(); ++i) {
      bl.x.push_back(w_bl.times()[i] / config.clock_period);
      bl.y.push_back(w_bl.values()[i]);
      blb.x.push_back(w_blb.times()[i] / config.clock_period);
      blb.y.push_back(w_blb.values()[i]);
    }
    util::ChartOptions chart;
    chart.x_label = "clock cycles";
    chart.y_label = "bit-line voltages [V]";
    chart.autoscale_y = false;
    chart.y_max = 1.7;
    std::fputs(util::render_chart({bl, blb}, chart).c_str(), stderr);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bitline_waveform failed: %s\n", e.what());
    return 1;
  }
}
