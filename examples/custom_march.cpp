// Evaluate a user-supplied March algorithm.
//
// Parses a March test from the command line (or a default), prints its
// statistics, predicts PF / PLPT / PRR with the paper's closed-form model,
// and verifies the prediction with a cycle-accurate run.
//
//   $ ./examples/custom_march '{ B(w0); U(r0,w1); D(r1,w0); B(r0) }'
#include <cstdio>
#include <exception>

#include "core/session.h"
#include "march/parser.h"
#include "power/analytic.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace sramlp;
  try {
    const std::string notation =
        argc > 1 ? argv[1]
                 : "{ B(w0); U(r0,w1); D(r1,w0); B(r0) }";  // March X
    const march::MarchTest test = march::parse_march("custom", notation);

    const march::MarchStats stats = test.stats();
    std::printf("notation: %s\n", test.str().c_str());
    std::printf("elements: %d, operations: %d (complexity %dN), reads: %d, "
                "writes: %d\n\n",
                stats.elements, stats.operations, stats.operations,
                stats.reads, stats.writes);

    // Closed-form prediction on a smaller array (fast even for long tests).
    const std::size_t rows = 128;
    const std::size_t cols = 512;
    const auto tech = power::TechnologyParams::tech_0p13um();
    const power::AnalyticModel model(tech, rows, cols);
    const auto counts = test.counts();

    // Cycle-accurate verification.
    core::SessionConfig config;
    config.geometry = {rows, cols, 1};
    config.tech = tech;
    const auto cmp = core::TestSession::compare_modes(config, test);

    util::Table t({"quantity", "model", "simulated"});
    t.add_row({"PF [pJ/cycle]", util::fmt(units::as_pJ(model.pf(counts))),
               util::fmt(units::as_pJ(cmp.functional.energy_per_cycle_j))});
    t.add_row({"PLPT [pJ/cycle]",
               util::fmt(units::as_pJ(model.plpt(counts))),
               util::fmt(units::as_pJ(cmp.low_power.energy_per_cycle_j))});
    t.add_row({"PRR", util::fmt_percent(model.prr(counts)),
               util::fmt_percent(cmp.prr)});
    std::fputs(t.str("128x512 array, 0.13 um").c_str(), stdout);

    if (cmp.functional.mismatches != 0 || cmp.low_power.mismatches != 0) {
      std::puts("\nWARNING: the algorithm reported mismatches on a fault-"
                "free array —\ncheck its read expectations.");
      return 2;
    }
    std::puts("\nfault-free run passes in both modes.");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "custom_march failed: %s\n", e.what());
    std::fputs("usage: custom_march '{ B(w0); U(r0,w1); D(r1,w0); B(r0) }'\n",
               stderr);
    return 1;
  }
  return 0;
}
