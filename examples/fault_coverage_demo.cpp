// Fault-coverage demonstration: the two properties the paper's technique
// rests on.
//
//  1. March DOF-1 — fault detection is independent of the address order,
//     which is what legalises fixing the order to word-line-after-word-line.
//  2. Mode equivalence — the low-power test mode detects exactly the same
//     faults as functional mode (static fault space), with the paper's §4
//     documented exception: RES-sensitive cells NEED functional-mode
//     stress, so removing that stress is exactly what the low-power mode
//     is allowed to change.  Both checks below carve the RES instances out
//     (their flips are also timing events, so DOF-1 does not cover them).
//
//   $ ./examples/fault_coverage_demo
#include <cstdio>
#include <exception>
#include <map>

#include "core/fault_campaign.h"
#include "march/algorithms.h"
#include "util/table.h"

int main() {
  using namespace sramlp;
  try {
    const sram::Geometry geometry{32, 32, 1};
    core::SessionConfig config;
    config.geometry = geometry;

    const auto library = faults::standard_fault_library(geometry, 2006);
    std::printf("injected fault library: %zu single faults on a 32x32 "
                "array\n\n",
                library.size());

    // --- per-kind coverage for three algorithms, both modes -------------
    for (const auto& test :
         {march::algorithms::mats_plus(), march::algorithms::march_c_minus(),
          march::algorithms::march_ss()}) {
      const auto report = core::run_fault_campaign(config, test, library);

      std::map<std::string, std::pair<int, int>> per_kind;  // detected/total
      for (const auto& e : report.entries) {
        auto& [detected, total] = per_kind[faults::to_string(e.spec.kind)];
        ++total;
        if (e.detected_low_power) ++detected;
      }

      util::Table t({"fault kind", "detected (LP mode)", "coverage"});
      for (const auto& [kind, counts] : per_kind)
        t.add_row({kind,
                   std::to_string(counts.first) + "/" +
                       std::to_string(counts.second),
                   util::fmt_percent(static_cast<double>(counts.first) /
                                     counts.second, 0)});
      std::fputs(t.str(test.name() + "  " + test.str()).c_str(), stdout);
      bool agree_non_res = true;
      for (const auto& e : report.entries)
        if (e.spec.kind != faults::FaultKind::kResSensitive &&
            e.detected_functional != e.detected_low_power)
          agree_non_res = false;
      std::printf("modes agree on every verdict outside the RES-sensitive "
                  "exception (paper §4): %s\n\n",
                  agree_non_res ? "yes" : "NO");
      if (!agree_non_res) return 2;
    }

    // --- DOF-1: verdicts identical across address orders ----------------
    const auto test = march::algorithms::march_ss();
    int disagreements = 0;
    std::size_t checked = 0;
    for (const auto& spec : library) {
      if (spec.kind == faults::FaultKind::kResSensitive) continue;
      ++checked;
      core::SessionConfig canonical = config;
      const bool base = core::detects_fault(canonical, test, spec);
      core::SessionConfig shuffled = config;
      shuffled.order = march::AddressOrder::pseudo_random(32, 32, 99);
      if (core::detects_fault(shuffled, test, spec) != base) ++disagreements;
    }
    std::printf("DOF-1 check (March SS, pseudo-random vs canonical order): "
                "%d/%zu verdicts differ\n",
                disagreements, checked);
    return disagreements == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fault_coverage_demo failed: %s\n", e.what());
    return 1;
  }
}
