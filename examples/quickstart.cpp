// Quickstart: measure the test-power saving of the low-power test mode.
//
// Builds the paper's 512x512 SRAM, runs March C- in functional mode and in
// the low-power test mode, and prints the Power Reduction Ratio — the
// smallest complete use of the library's public API.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <exception>

#include "core/session.h"
#include "march/algorithms.h"
#include "util/units.h"

int main() {
  using namespace sramlp;
  try {
    // 1. Describe the memory under test (the paper's setup).
    core::SessionConfig config;
    config.geometry = sram::Geometry::paper_512x512();
    config.tech = power::TechnologyParams::tech_0p13um();

    // 2. Pick a March algorithm.
    const march::MarchTest test = march::algorithms::march_c_minus();
    std::printf("algorithm: %s  %s\n", test.name().c_str(),
                test.str().c_str());

    // 3. Run it in both modes on identical arrays and compare.
    const core::PrrComparison cmp =
        core::TestSession::compare_modes(config, test);

    std::printf("functional mode:     %6.2f pJ/cycle over %llu cycles\n",
                units::as_pJ(cmp.functional.energy_per_cycle_j),
                static_cast<unsigned long long>(cmp.functional.cycles));
    std::printf("low-power test mode: %6.2f pJ/cycle over %llu cycles\n",
                units::as_pJ(cmp.low_power.energy_per_cycle_j),
                static_cast<unsigned long long>(cmp.low_power.cycles));
    std::printf("power reduction ratio (PRR): %.1f %%  (paper: ~47-51 %%)\n",
                100.0 * cmp.prr);

    // 4. The saving must not cost correctness: both runs read back every
    //    expected value and leave identical array contents.
    std::printf("read mismatches: functional %llu, low-power %llu\n",
                static_cast<unsigned long long>(cmp.functional.mismatches),
                static_cast<unsigned long long>(cmp.low_power.mismatches));
    std::printf("faulty swaps in low-power mode: %llu (restore cycle "
                "active)\n",
                static_cast<unsigned long long>(
                    cmp.low_power.stats.faulty_swaps));

    // 5. The same measurement through the engine's closed-form analytic
    //    backend — no per-cell simulation, for fast sweeps.
    const core::PrrComparison fast =
        core::TestSession::compare_modes_analytic(config, test);
    std::printf("analytic backend PRR:        %.1f %%  (closed form, O(1))\n",
                100.0 * fast.prr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
