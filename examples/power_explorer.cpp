// Design-space explorer: PRR across array organisation, word width and
// algorithm — the tool a memory-BIST engineer would use to decide whether
// the modified pre-charge control is worth the ten transistors per column.
//
//   $ ./examples/power_explorer [rows] [cols] [word_width] [--json]
//
// --json replaces the table with a machine-readable document (one entry
// per algorithm, full per-source meter breakdowns via power::to_json).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <vector>

#include "core/session.h"
#include "io/serialize.h"
#include "march/algorithms.h"
#include "power/analytic.h"
#include "power/report.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace sramlp;
  try {
    bool json = false;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0)
        json = true;
      else
        positional.push_back(argv[i]);
    }
    const std::size_t rows =
        positional.size() > 0
            ? static_cast<std::size_t>(std::atoll(positional[0]))
            : 128;
    const std::size_t cols =
        positional.size() > 1
            ? static_cast<std::size_t>(std::atoll(positional[1]))
            : 256;
    const std::size_t width =
        positional.size() > 2
            ? static_cast<std::size_t>(std::atoll(positional[2]))
            : 1;

    core::SessionConfig config;
    config.geometry = {rows, cols, width};
    const auto tech = power::TechnologyParams::tech_0p13um();
    config.tech = tech;
    config.geometry.validate();

    if (json) {
      io::JsonValue doc = io::JsonValue::object();
      doc.set("geometry", io::to_json(config.geometry));
      io::JsonValue algorithms = io::JsonValue::array();
      for (const auto& test : march::algorithms::all()) {
        const auto cmp = core::TestSession::compare_modes(config, test);
        io::JsonValue entry = io::JsonValue::object();
        entry.set("algorithm", io::JsonValue::string(test.name()));
        entry.set("operations",
                  io::JsonValue::integer(static_cast<std::uint64_t>(
                      test.stats().operations)));
        entry.set("cycles", io::JsonValue::integer(cmp.functional.cycles));
        entry.set("prr", io::JsonValue::number(cmp.prr));
        entry.set("functional", power::to_json(cmp.functional.meter));
        entry.set("low_power", power::to_json(cmp.low_power.meter));
        algorithms.push_back(std::move(entry));
      }
      doc.set("algorithms", std::move(algorithms));
      std::fputs((doc.dump(2) + "\n").c_str(), stdout);
      return 0;
    }

    std::printf("array: %zux%zu, word width %zu, %s\n\n", rows, cols, width,
                "0.13 um / 1.6 V / 3 ns");

    util::Table t({"algorithm", "ops", "test length [cycles]",
                   "PF [pJ/cyc]", "PLPT [pJ/cyc]", "PRR", "energy saved"});
    for (const auto& test : march::algorithms::all()) {
      const auto cmp = core::TestSession::compare_modes(config, test);
      const double saved_j = cmp.functional.supply_energy_j -
                             cmp.low_power.supply_energy_j;
      t.add_row(
          {test.name(), util::fmt_count(test.stats().operations),
           util::fmt_count(static_cast<long long>(cmp.functional.cycles)),
           util::fmt(units::as_pJ(cmp.functional.energy_per_cycle_j)),
           util::fmt(units::as_pJ(cmp.low_power.energy_per_cycle_j)),
           util::fmt_percent(cmp.prr),
           util::fmt(saved_j * 1e9, 1) + " nJ"});
    }
    std::fputs(t.str("whole-library comparison").c_str(), stdout);

    std::puts("\nrule of thumb (paper §5): the saving scales with "
              "(#col - 2w) * P_A;\nperipheral energy and the op itself set "
              "the floor PLPT cannot cross.");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "power_explorer failed: %s\n", e.what());
    return 1;
  }
}
