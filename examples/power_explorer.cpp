// Design-space explorer: PRR across array organisation, word width and
// algorithm — the tool a memory-BIST engineer would use to decide whether
// the modified pre-charge control is worth the ten transistors per column.
//
//   $ ./examples/power_explorer [rows] [cols] [word_width] [--json]
//                               [--trace] [--window N]
//                               [--waveform FILE] [--waveform-format csv|jsonl]
//
// --json replaces the table with a machine-readable document (one entry
// per algorithm, full per-source meter breakdowns via power::to_json).
// --trace adds time-resolved accounting: peak-window power for both modes
// and a per-March-element energy table (or, with --json, full
// TraceSummary objects) — the peak-power view the scalar PRR table
// cannot give.  --window sets the trace window in cycles (default 64).
// --waveform streams the per-cycle energy waveform of every run into FILE
// (power::WaveformWriter).  Runs are numbered in file order: for each
// algorithm of the library, the functional run first, then the low-power
// run.  --waveform-format picks CSV (default) or JSONL records.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "io/serialize.h"
#include "march/algorithms.h"
#include "power/analytic.h"
#include "power/report.h"
#include "power/waveform.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace sramlp;
  try {
    bool json = false;
    bool trace = false;
    std::size_t window = 64;
    std::string waveform_path;
    power::WaveformFormat waveform_format = power::WaveformFormat::kCsv;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0)
        json = true;
      else if (std::strcmp(argv[i], "--trace") == 0)
        trace = true;
      else if (std::strcmp(argv[i], "--waveform") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr,
                       "power_explorer: --waveform needs an output file\n");
          return 2;
        }
        waveform_path = argv[++i];
      } else if (std::strcmp(argv[i], "--waveform-format") == 0) {
        const std::string value = i + 1 < argc ? argv[++i] : "";
        if (value == "csv")
          waveform_format = power::WaveformFormat::kCsv;
        else if (value == "jsonl")
          waveform_format = power::WaveformFormat::kJsonl;
        else {
          std::fprintf(stderr,
                       "power_explorer: --waveform-format must be csv or "
                       "jsonl, got '%s'\n",
                       value.c_str());
          return 2;
        }
      } else if (std::strcmp(argv[i], "--window") == 0) {
        // Strict parse: a wrapped negative or zero window would silently
        // produce a plausible-looking but meaningless peak power.
        const std::string value = i + 1 < argc ? argv[++i] : "";
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos ||
            (window = static_cast<std::size_t>(
                 std::stoull(value))) == 0) {
          std::fprintf(stderr,
                       "power_explorer: --window needs a positive cycle "
                       "count, got '%s'\n",
                       value.c_str());
          return 2;
        }
      } else
        positional.push_back(argv[i]);
    }
    const std::size_t rows =
        positional.size() > 0
            ? static_cast<std::size_t>(std::atoll(positional[0]))
            : 128;
    const std::size_t cols =
        positional.size() > 1
            ? static_cast<std::size_t>(std::atoll(positional[1]))
            : 256;
    const std::size_t width =
        positional.size() > 2
            ? static_cast<std::size_t>(std::atoll(positional[2]))
            : 1;

    core::SessionConfig config;
    config.geometry = {rows, cols, width};
    const auto tech = power::TechnologyParams::tech_0p13um();
    config.tech = tech;
    config.geometry.validate();
    if (trace) config.trace = power::TraceConfig{.window_cycles = window};
    std::unique_ptr<power::WaveformWriter> waveform;
    if (!waveform_path.empty()) {
      waveform = std::make_unique<power::WaveformWriter>(waveform_path,
                                                         waveform_format);
      config.waveform_sink = waveform.get();
    }

    if (json) {
      io::JsonValue doc = io::JsonValue::object();
      doc.set("geometry", io::to_json(config.geometry));
      io::JsonValue algorithms = io::JsonValue::array();
      for (const auto& test : march::algorithms::all()) {
        const auto cmp = core::TestSession::compare_modes(config, test);
        io::JsonValue entry = io::JsonValue::object();
        entry.set("algorithm", io::JsonValue::string(test.name()));
        entry.set("operations",
                  io::JsonValue::integer(static_cast<std::uint64_t>(
                      test.stats().operations)));
        entry.set("cycles", io::JsonValue::integer(cmp.functional.cycles));
        entry.set("prr", io::JsonValue::number(cmp.prr));
        entry.set("functional", power::to_json(cmp.functional.meter));
        entry.set("low_power", power::to_json(cmp.low_power.meter));
        if (cmp.functional.trace)
          entry.set("functional_trace", io::to_json(*cmp.functional.trace));
        if (cmp.low_power.trace)
          entry.set("low_power_trace", io::to_json(*cmp.low_power.trace));
        algorithms.push_back(std::move(entry));
      }
      doc.set("algorithms", std::move(algorithms));
      std::fputs((doc.dump(2) + "\n").c_str(), stdout);
      return 0;
    }

    std::printf("array: %zux%zu, word width %zu, %s\n\n", rows, cols, width,
                "0.13 um / 1.6 V / 3 ns");

    util::Table t({"algorithm", "ops", "test length [cycles]",
                   "PF [pJ/cyc]", "PLPT [pJ/cyc]", "PRR", "energy saved"});
    std::vector<core::PrrComparison> comparisons;
    for (const auto& test : march::algorithms::all()) {
      auto cmp = core::TestSession::compare_modes(config, test);
      const double saved_j = cmp.functional.supply_energy_j -
                             cmp.low_power.supply_energy_j;
      t.add_row(
          {test.name(), util::fmt_count(test.stats().operations),
           util::fmt_count(static_cast<long long>(cmp.functional.cycles)),
           util::fmt(units::as_pJ(cmp.functional.energy_per_cycle_j)),
           util::fmt(units::as_pJ(cmp.low_power.energy_per_cycle_j)),
           util::fmt_percent(cmp.prr),
           util::fmt(saved_j * 1e9, 1) + " nJ"});
      comparisons.push_back(std::move(cmp));
    }
    std::fputs(t.str("whole-library comparison").c_str(), stdout);

    if (trace) {
      const auto& all = march::algorithms::all();
      for (std::size_t a = 0; a < all.size(); ++a) {
        const core::PrrComparison& cmp = comparisons[a];
        if (!cmp.functional.trace || !cmp.low_power.trace) continue;
        const power::TraceSummary& ft = *cmp.functional.trace;
        const power::TraceSummary& lt = *cmp.low_power.trace;
        std::printf("\n%s — per-element energy (window %llu cycles)\n",
                    all[a].name().c_str(),
                    static_cast<unsigned long long>(ft.window_cycles));
        util::Table et({"element", "cycles", "F [nJ]", "LP [nJ]",
                        "LP precharge", "LP share"});
        for (std::size_t e = 0; e < lt.elements.size(); ++e) {
          const power::ElementEnergy& le = lt.elements[e];
          const power::ElementEnergy& fe = ft.elements[e];
          const double share = lt.supply_energy_j > 0.0
                                   ? le.supply_energy_j / lt.supply_energy_j
                                   : 0.0;
          const double pre_share =
              le.supply_energy_j > 0.0
                  ? le.precharge_energy_j / le.supply_energy_j
                  : 0.0;
          et.add_row({all[a].elements()[le.element].str(),
                      util::fmt_count(static_cast<long long>(le.cycles)),
                      util::fmt(fe.supply_energy_j * 1e9, 2),
                      util::fmt(le.supply_energy_j * 1e9, 2),
                      util::fmt_percent(pre_share),
                      util::fmt_percent(share)});
        }
        std::fputs(et.str("").c_str(), stdout);
        std::printf("peak window: F %.1f uW (window %llu), LP %.1f uW "
                    "(window %llu); avg F %.1f uW, LP %.1f uW\n",
                    ft.peak_power_w * 1e6,
                    static_cast<unsigned long long>(ft.peak_window),
                    lt.peak_power_w * 1e6,
                    static_cast<unsigned long long>(lt.peak_window),
                    ft.average_power_w * 1e6, lt.average_power_w * 1e6);
      }
    }

    if (waveform) {
      waveform->finish();
      std::printf("\nwaveform: %llu records -> %s\n",
                  static_cast<unsigned long long>(
                      waveform->records_written()),
                  waveform_path.c_str());
    }

    std::puts("\nrule of thumb (paper §5): the saving scales with "
              "(#col - 2w) * P_A;\nperipheral energy and the op itself set "
              "the floor PLPT cannot cross.");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "power_explorer failed: %s\n", e.what());
    return 1;
  }
}
