// Design-space explorer: PRR across array organisation, word width and
// algorithm — the tool a memory-BIST engineer would use to decide whether
// the modified pre-charge control is worth the ten transistors per column.
//
//   $ ./examples/power_explorer [rows] [cols] [word_width]
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "core/session.h"
#include "march/algorithms.h"
#include "power/analytic.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace sramlp;
  try {
    const std::size_t rows =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 128;
    const std::size_t cols =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 256;
    const std::size_t width =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 1;

    core::SessionConfig config;
    config.geometry = {rows, cols, width};
    const auto tech = power::TechnologyParams::tech_0p13um();
    config.tech = tech;
    config.geometry.validate();

    std::printf("array: %zux%zu, word width %zu, %s\n\n", rows, cols, width,
                "0.13 um / 1.6 V / 3 ns");

    util::Table t({"algorithm", "ops", "test length [cycles]",
                   "PF [pJ/cyc]", "PLPT [pJ/cyc]", "PRR", "energy saved"});
    for (const auto& test : march::algorithms::all()) {
      const auto cmp = core::TestSession::compare_modes(config, test);
      const double saved_j = cmp.functional.supply_energy_j -
                             cmp.low_power.supply_energy_j;
      t.add_row(
          {test.name(), util::fmt_count(test.stats().operations),
           util::fmt_count(static_cast<long long>(cmp.functional.cycles)),
           util::fmt(units::as_pJ(cmp.functional.energy_per_cycle_j)),
           util::fmt(units::as_pJ(cmp.low_power.energy_per_cycle_j)),
           util::fmt_percent(cmp.prr),
           util::fmt(saved_j * 1e9, 1) + " nJ"});
    }
    std::fputs(t.str("whole-library comparison").c_str(), stdout);

    std::puts("\nrule of thumb (paper §5): the saving scales with "
              "(#col - 2w) * P_A;\nperipheral energy and the op itself set "
              "the floor PLPT cannot cross.");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "power_explorer failed: %s\n", e.what());
    return 1;
  }
}
