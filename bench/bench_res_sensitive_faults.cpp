// Experiment E12 — quantifies the paper's §4 caveat: "for algorithms that
// ... rely on normal operation power consumption [10, 12, 14, 15], the
// normal function mode can be selected."
//
// A RES-count-sensitive cell (a dynamic fault activated by accumulated
// Read Equivalent Stress, the mechanism behind the paper's refs [10]/[15])
// is exposed by the massive background stress of functional mode but never
// accumulates enough stress in the low-power test mode — by design, since
// removing that stress is where the power saving comes from.
#include <cstdio>
#include <exception>

#include "core/fault_campaign.h"
#include "march/algorithms.h"
#include "util/table.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using faults::FaultKind;
using faults::FaultSpec;
using sram::Mode;

double stress_for(const SessionConfig& cfg, const FaultSpec& spec,
                  const march::MarchTest& test) {
  faults::FaultSet set({spec});
  TestSession session(cfg);
  session.attach_fault_model(&set);
  session.run(test);
  return set.res_stress_accumulated();
}

void run() {
  std::puts("== E12: §4 caveat — RES-dependent tests need functional mode "
            "==\n");
  const std::size_t rows = 64;
  const std::size_t cols = 128;
  const auto test = march::algorithms::march_c_minus();

  SessionConfig cfg;
  cfg.geometry = {rows, cols, 1};

  FaultSpec probe;
  probe.kind = FaultKind::kResSensitive;
  probe.victim = {rows / 2, cols / 2};
  probe.res_threshold = 1e9;  // never fires: measure raw exposure first

  SessionConfig functional = cfg;
  functional.mode = Mode::kFunctional;
  SessionConfig low_power = cfg;
  low_power.mode = Mode::kLowPowerTest;

  const double stress_fn = stress_for(functional, probe, test);
  const double stress_lp = stress_for(low_power, probe, test);

  util::Table exposure({"mode", "RES exposure [full-RES cycle equivalents]",
                        "relative"});
  exposure.add_row({"functional", util::fmt(stress_fn, 1), "1.0x"});
  exposure.add_row({"low-power test", util::fmt(stress_lp, 1),
                    util::fmt(stress_lp / stress_fn, 4) + "x"});
  std::fputs(exposure.str("stress reaching one victim cell over March C-")
                 .c_str(),
             stdout);

  // Now give the fault a threshold between the two exposures and run the
  // detection campaign.
  FaultSpec fault = probe;
  fault.res_threshold = 0.25 * stress_fn;
  const auto report = core::run_fault_campaign(cfg, test, {fault});

  util::Table verdicts({"mode", "fault detected?"});
  verdicts.add_row({"functional",
                    report.entries[0].detected_functional ? "YES" : "no"});
  verdicts.add_row({"low-power test",
                    report.entries[0].detected_low_power ? "YES" : "no"});
  std::fputs(verdicts
                 .str("\ndetection verdict (threshold = 25 % of the "
                      "functional exposure)")
                 .c_str(),
             stdout);

  std::printf(
      "\nfunctional mode delivers %.0fx the stress of the low-power mode;\n"
      "stress-activated faults therefore need the functional mode, exactly\n"
      "as the paper's §4 advises.  All static faults are unaffected (see\n"
      "tests/test_detection.cpp: detection parity across modes).\n",
      stress_fn / stress_lp);
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_res_sensitive_faults failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
