// Experiment E2 — reproduces the paper's Fig. 2: the pre-charge action of a
// selected and an unselected column over one clock cycle, in functional
// mode and in the low-power test mode, driven by the gate-level modified
// pre-charge control logic (Fig. 8).
#include <cstdio>
#include <exception>
#include <string>

#include "ctrl/precharge_control.h"

namespace {

using namespace sramlp;
using ctrl::Phase;
using ctrl::PrechargeController;

struct ColumnTimeline {
  std::string label;
  std::string operate;  // state during the first half-cycle
  std::string restore;  // state during the second half-cycle
};

void print_timeline(const ColumnTimeline& t) {
  std::printf("  %-28s | %-26s | %-26s |\n", t.label.c_str(),
              t.operate.c_str(), t.restore.c_str());
}

std::string describe(bool npr_off, bool selected, bool operate_phase) {
  if (selected && operate_phase && npr_off)
    return "Pre-charge OFF - Operation";
  if (selected && !operate_phase && !npr_off)
    return "Pre-charge ON - BL restore";
  if (npr_off) return "Pre-charge OFF - idle";
  return operate_phase ? "Pre-charge ON - RES"
                       : "Pre-charge ON - BL restore";
}

void run() {
  std::puts("== E2: Fig. 2 — pre-charge action per half-cycle ==\n");
  std::puts("            0 ----------- 1/2 ck cycle ----------- 1 ck cycle");

  PrechargeController c(8);
  const std::size_t selected = 3;

  for (const bool lptest : {false, true}) {
    std::printf("\n-- %s --\n",
                lptest ? "low-power test mode (LPtest = 1)"
                       : "functional mode (LPtest = 0)");
    // Columns of interest: the selected one, the follower, a distant one.
    for (const std::size_t col : {selected, selected + 1, selected + 3}) {
      ColumnTimeline t;
      t.label = "column " + std::to_string(col) +
                (col == selected ? " (selected)"
                 : col == selected + 1 ? " (follower)" : " (distant)");
      for (const Phase phase : {Phase::kOperate, Phase::kRestore}) {
        PrechargeController::CycleInputs in;
        in.lptest = lptest;
        in.selected = selected;
        in.phase = phase;
        const auto& npr = c.evaluate(in);
        const std::string s =
            describe(npr[col], col == selected, phase == Phase::kOperate);
        if (phase == Phase::kOperate)
          t.operate = s;
        else
          t.restore = s;
      }
      print_timeline(t);
    }
  }

  std::puts(
      "\npaper Fig. 2: the selected column is OFF during the operation and\n"
      "ON for the bit-line restoration; unselected columns in functional\n"
      "mode stay ON the whole cycle (RES, then restoration).  In the\n"
      "low-power test mode only the follower column stays ON; distant\n"
      "columns are OFF for the entire cycle.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig2_precharge_phases failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
