// Experiment E13 — engineering micro-benchmarks (google-benchmark):
// throughput of the cycle simulator in both modes, full March runs, the
// switch-level transient integrator, and the gate-level controller.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "circuit/subcircuits.h"
#include "circuit/transient.h"
#include "core/fault_campaign.h"
#include "core/session.h"
#include "ctrl/precharge_control.h"
#include "dist/job.h"
#include "dist/service.h"
#include "dist/steal_queue.h"
#include "dist/worker.h"
#include "engine/analytic_backend.h"
#include "faults/models.h"
#include "io/serialize.h"
#include "march/algorithms.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/evaluator.h"
#include "search/schedule.h"
#include "sram/simd.h"
#include "util/rng.h"

namespace {

using namespace sramlp;

// The service benchmarks drive real submits through the instrumented
// daemon; at the default info level every iteration would write a log
// line to stderr and the benchmark would measure terminal I/O.
const bool g_quiet_logs = [] {
  obs::Logger::global().set_level(obs::LogLevel::kError);
  return true;
}();
using sram::CycleCommand;
using sram::Mode;
using sram::SramArray;
using sram::SramConfig;

void BM_FunctionalCycle(benchmark::State& state) {
  SramConfig cfg;
  cfg.geometry = {512, 512, 1};
  cfg.mode = Mode::kFunctional;
  SramArray array(cfg);
  std::size_t col = 0;
  for (auto _ : state) {
    CycleCommand cmd;
    cmd.row = 0;
    cmd.col_group = col;
    cmd.is_read = false;
    cmd.value = true;
    benchmark::DoNotOptimize(array.cycle(cmd));
    col = (col + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalCycle);

void BM_LowPowerCycle(benchmark::State& state) {
  SramConfig cfg;
  cfg.geometry = {512, 512, 1};
  cfg.mode = Mode::kLowPowerTest;
  SramArray array(cfg);
  std::size_t col = 0;
  for (auto _ : state) {
    CycleCommand cmd;
    cmd.row = 0;
    cmd.col_group = col;
    cmd.is_read = false;
    cmd.value = true;
    cmd.restore_row_transition = col == 511;
    benchmark::DoNotOptimize(array.cycle(cmd));
    col = (col + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LowPowerCycle);

void BM_MarchRun(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? Mode::kFunctional
                                        : Mode::kLowPowerTest;
  core::SessionConfig cfg;
  cfg.geometry = {64, 64, 1};
  cfg.mode = mode;
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    core::TestSession session(cfg);
    benchmark::DoNotOptimize(session.run(test));
  }
  // Cycles per run derive from the algorithm itself (operations per
  // address plus any delay elements), so swapping the March test cannot
  // silently skew the throughput numbers.
  const auto cycles_per_run =
      static_cast<std::int64_t>(test.cycle_count(cfg.geometry.words()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cycles_per_run);
  state.SetLabel(mode == Mode::kFunctional ? "functional (cycles/s)"
                                           : "low-power (cycles/s)");
}
BENCHMARK(BM_MarchRun)->Arg(0)->Arg(1);

// Backend face-off at the paper's full 512x512 scale: one fault-free March
// C- sweep point (both modes, PRR) through the cycle-accurate array vs the
// closed-form analytic backend.  The analytic backend must be >= 10x
// faster (in practice it is orders of magnitude faster: O(1) vs 2.6M
// simulated cycles per mode).
void BM_SweepPoint512_CycleAccurate(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TestSession::compare_modes(cfg, test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 March C- PRR points/s (cycle-accurate)");
}
BENCHMARK(BM_SweepPoint512_CycleAccurate)->Unit(benchmark::kMillisecond);

// Same sweep point through the per-column reference engine — the executable
// specification the bitsliced/cohort path is parity-tested against.  The
// default path must stay well ahead of this.
void BM_SweepPoint512_CycleAccurateReference(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  cfg.column_model = sram::ColumnModel::kPerColumnReference;
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TestSession::compare_modes(cfg, test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 March C- PRR points/s (per-column reference)");
}
BENCHMARK(BM_SweepPoint512_CycleAccurateReference)
    ->Unit(benchmark::kMillisecond);

void BM_SweepPoint512_Analytic(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::TestSession::compare_modes_analytic(cfg, test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 March C- PRR points/s (analytic backend)");
}
BENCHMARK(BM_SweepPoint512_Analytic)->Unit(benchmark::kMillisecond);

// Untraced twin of BM_SweepPoint256_Traced: the same sweep point with no
// sink attached.  The ratio between the two is the cost of time-resolved
// power accounting; with the bulk-window traced fast path it must stay
// small (acceptance: traced <= 1.3x untraced).
void BM_SweepPoint256_CycleAccurate(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = {256, 256, 1};
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TestSession::compare_modes(cfg, test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("256x256 March C- PRR points/s (cycle-accurate)");
}
BENCHMARK(BM_SweepPoint256_CycleAccurate)->Unit(benchmark::kMillisecond);

// Traced sweep point: the probe/sink layer end to end — bulk-window fold
// into the PowerTrace plus element attribution.  Compare against
// BM_SweepPoint256_CycleAccurate to see the time-resolution tax.
void BM_SweepPoint256_Traced(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = {256, 256, 1};
  cfg.trace = power::TraceConfig{.window_cycles = 256};
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    const auto cmp = core::TestSession::compare_modes(cfg, test);
    benchmark::DoNotOptimize(cmp.low_power.trace->peak_power_w);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("256x256 March C- traced PRR points/s");
}
BENCHMARK(BM_SweepPoint256_Traced)->Unit(benchmark::kMillisecond);

// The SIMD dispatch seam's cohort-evaluation kernel at each level the host
// supports (arg = Level: 0 scalar, 1 NEON, 2 AVX2, 3 AVX-512).  Levels
// beyond the host's capability are clamped by set_level_for_testing, and a
// level the build carries no code for dispatches to scalar, so the label
// records which kernel actually ran.
void BM_CohortEvalSimd(benchmark::State& state) {
  sram::simd::set_level_for_testing(
      static_cast<sram::simd::Level>(state.range(0)));
  constexpr std::size_t kBatch = 1024;
  std::vector<double> factors(kBatch), v_low(kBatch), stress(kBatch),
      dv(kBatch), equiv(kBatch), recharge(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i)
    factors[i] = 1.0 / static_cast<double>(i + 1);
  sram::simd::CohortEvalConstants k;
  k.vdd = 1.0;
  k.half_c = 0.5 * 250e-15;
  k.c_vdd = 250e-15;
  k.tau_over_duty = 1.0e4;
  for (auto _ : state) {
    sram::simd::cohort_eval_batch(factors.data(), kBatch, k, v_low.data(),
                                  stress.data(), dv.data(), equiv.data(),
                                  recharge.data());
    benchmark::DoNotOptimize(v_low.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.SetLabel(std::string("cohort evals/s (") +
                 sram::simd::level_name(sram::simd::active_level()) + ")");
  sram::simd::reset_level_for_testing();
}
BENCHMARK(BM_CohortEvalSimd)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// The schedule search's batch-scoring kernel at each dispatch level
// (arg = Level, clamped like BM_CohortEvalSimd): 1024 candidate lanes of
// 12 slots each — a March C- schedule with half its slots idle windows —
// through the branchless energy/cycles/peak-window walk.
void BM_SearchScoreBatch(benchmark::State& state) {
  sram::simd::set_level_for_testing(
      static_cast<sram::simd::Level>(state.range(0)));
  constexpr std::size_t kLanes = 1024;
  constexpr std::size_t kSlots = 12;
  std::vector<double> rates(kSlots * kLanes), cycles(kSlots * kLanes),
      energy(kLanes), total(kLanes), peak(kLanes);
  for (std::size_t s = 0; s < kSlots; ++s)
    for (std::size_t l = 0; l < kLanes; ++l) {
      rates[s * kLanes + l] =
          (s % 2 == 0) ? 1e-12 * static_cast<double>(l + 1) : 1e-14;
      cycles[s * kLanes + l] =
          (s % 2 == 0) ? 1024.0 : static_cast<double>((l % 8) * 128);
    }
  for (auto _ : state) {
    sram::simd::search_score_batch(rates.data(), cycles.data(), kLanes,
                                   kSlots, 2048.0, energy.data(),
                                   total.data(), peak.data());
    benchmark::DoNotOptimize(peak.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes));
  state.SetLabel(std::string("candidate scores/s (") +
                 sram::simd::level_name(sram::simd::active_level()) + ")");
  sram::simd::reset_level_for_testing();
}
BENCHMARK(BM_SearchScoreBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// The whole evaluator path the beam search pays per candidate at the
// paper's full 512x512 scale: validity-preserved random candidates of
// March C- (reorders + idle windows), SoA packing + SIMD scoring via
// ScheduleEvaluator::score.  The ROADMAP target is >= 1M candidate
// scores/s single-threaded; restarts fan out on top of this.
void BM_SearchCandidatesPerSec(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();
  search::ScheduleEvaluator evaluator(cfg, test,
                                      4 * cfg.geometry.words());
  const search::MoveLimits limits{.idle_quantum = 65536,
                                  .max_idle_quanta = 16};
  util::Rng rng(17);
  std::vector<search::Candidate> batch(
      256, search::identity_candidate(evaluator.elements()));
  for (search::Candidate& candidate : batch)
    for (int move = 0; move < 4; ++move)
      search::apply_random_move(candidate, evaluator.conds(), limits, rng);
  std::vector<search::Score> scores;
  for (auto _ : state) {
    evaluator.score(batch, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.SetLabel("512x512 March C- candidate scores/s (single thread)");
}
BENCHMARK(BM_SearchCandidatesPerSec);

// The cohort engines' bulk meter accumulation: add(source, joules, count)
// must stay a repeated-addition loop (bit-identity with the per-column
// reference path), so its throughput bounds the cohort bulk paths.  The
// arg is the column count of one bulk event.
void BM_MeterBulkAdd(benchmark::State& state) {
  power::EnergyMeter meter;
  const auto count = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    meter.add(power::EnergySource::kPrechargeResFight, 1e-13, count);
    benchmark::DoNotOptimize(
        meter.total(power::EnergySource::kPrechargeResFight));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(count));
}
BENCHMARK(BM_MeterBulkAdd)->Arg(512);

// Fault-campaign throughput at the paper's full scale: one stuck-at fault
// means two full cycle-accurate March C- runs (both modes) on a 512x512
// array — the workload CampaignRunner fans out per library entry.
void BM_Campaign512_PerFault(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();
  const std::vector<faults::FaultSpec> one_fault = {
      faults::FaultSpec{.kind = faults::FaultKind::kStuckAt1,
                        .victim = {17, 131},
                        .aggressor = {}}};
  const core::CampaignRunner runner(core::CampaignRunner::Options{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cfg, test, one_fault));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 faults/s (serial, both modes)");
}
BENCHMARK(BM_Campaign512_PerFault)->Unit(benchmark::kMillisecond);

// Whole-library campaign at 256x256 (~110 faults with 8 instances per
// kind), March C-, per-fault vs the word-parallel multi-fault batcher.
// The batcher partitions victim-disjoint faults into shared sessions
// (faults::plan_batches), so the same report costs a fraction of the
// session pairs — the session_pairs counter records how many actually ran.
void BM_Campaign256(benchmark::State& state, bool batched) {
  core::SessionConfig cfg;
  cfg.geometry = {256, 256, 1};
  const auto test = march::algorithms::march_c_minus();
  const auto library = faults::standard_fault_library(cfg.geometry, 7, 8);
  core::CampaignRunner::Options opts;
  opts.batched = batched;
  const core::CampaignRunner runner(opts);
  std::size_t session_pairs = 0;
  for (auto _ : state) {
    const auto report = runner.run(cfg, test, library);
    session_pairs = report.session_pairs;
    benchmark::DoNotOptimize(report);
  }
  state.counters["faults"] = static_cast<double>(library.size());
  state.counters["session_pairs"] = static_cast<double>(session_pairs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(library.size()));
  state.SetLabel(batched ? "256x256 March C- campaign (batched)"
                         : "256x256 March C- campaign (per-fault)");
}
void BM_Campaign256_PerFault(benchmark::State& state) {
  BM_Campaign256(state, false);
}
void BM_Campaign256_Batched(benchmark::State& state) {
  BM_Campaign256(state, true);
}
BENCHMARK(BM_Campaign256_PerFault)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Campaign256_Batched)->Unit(benchmark::kMillisecond);

// --- distributed-subsystem overheads ----------------------------------------
// The dist/ layer's costs on top of the compute itself: JSON round-trips
// of results (what every worker->coordinator point pays) and a whole
// worker shard including protocol framing.  These bound the serialization
// tax of going multi-process.

dist::JobSpec bench_sweep_job() {
  dist::JobSpec job;
  job.kind = dist::JobSpec::Kind::kSweep;
  job.grid.geometries = {{16, 32, 1}, {8, 64, 1}};
  job.grid.backgrounds = {sram::DataBackground::solid0(),
                          sram::DataBackground::checkerboard()};
  job.grid.algorithms = {march::algorithms::mats_plus(),
                         march::algorithms::march_c_minus()};
  return job;  // 8 points
}

// One evaluated sweep point through the full emit -> parse -> rebuild
// cycle — the per-result cost of the JSONL protocol.
void BM_DistPointJsonRoundTrip(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = {16, 32, 1};
  core::SweepPointResult point;
  point.prr = core::TestSession::compare_modes(
      cfg, march::algorithms::march_c_minus());
  for (auto _ : state) {
    const std::string text = io::to_json(point).dump();
    benchmark::DoNotOptimize(
        io::sweep_point_from_json(io::JsonValue::parse(text)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("sweep points serialized+parsed/s");
}
BENCHMARK(BM_DistPointJsonRoundTrip);

// A whole job spec there and back — what `plan` pays per shard file and
// every worker pays once at startup.
void BM_DistJobSpecRoundTrip(benchmark::State& state) {
  const dist::JobSpec job = bench_sweep_job();
  for (auto _ : state) {
    const std::string text = dist::to_json(job).dump();
    benchmark::DoNotOptimize(
        dist::job_from_json(io::JsonValue::parse(text)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("job specs serialized+parsed/s");
}
BENCHMARK(BM_DistJobSpecRoundTrip);

// One worker shard end to end (compute + JSONL framing into memory):
// compare against BM_SweepPoint-style numbers to see the protocol tax.
void BM_DistWorkerShard(benchmark::State& state) {
  const dist::JobSpec job = bench_sweep_job();
  const dist::ShardPlan plan = dist::ShardPlan::contiguous(job.size(), 4);
  const dist::ShardSpec spec{job, plan, 0};
  const dist::Worker worker;
  for (auto _ : state) {
    std::ostringstream out;
    worker.run(spec, out);
    benchmark::DoNotOptimize(out.str());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan.size_of(0)));
  state.SetLabel("shard points computed+streamed/s");
}
BENCHMARK(BM_DistWorkerShard)->Unit(benchmark::kMillisecond);

// --- sweep-service overheads -------------------------------------------------
// The daemon's costs on top of the dist/ protocol: a whole submit through
// the socket coordinator (connect + submit + steal + stream + merge)
// against the same submit answered from the fingerprint cache, plus the
// bare steal-queue coordination cost per shard.

// A cold submit end to end, 2 worker threads over real sockets.  The
// whole-job LRU is pinned to one entry and two jobs with distinct
// fingerprints (same 8 points of compute — the algorithm list is just
// reordered) alternate, so every iteration misses the cache and runs.
void BM_ServiceSubmitCold(benchmark::State& state) {
  dist::Service::Options options;
  options.cache.capacity = 1;
  options.point_cache = false;
  dist::Service service(options);
  service.start();
  const std::string address = service.address();
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w)
    workers.emplace_back(
        [address] { dist::ServiceWorker().run(address); });
  dist::JobSpec jobs[2] = {bench_sweep_job(), bench_sweep_job()};
  std::swap(jobs[1].grid.algorithms[0], jobs[1].grid.algorithms[1]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::submit_job(address, jobs[i++ % 2]).document);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs[0].size()));
  state.SetLabel("service points computed+streamed/s (cache misses)");
  service.request_stop();
  service.wait();
  for (std::thread& t : workers) t.join();
}
BENCHMARK(BM_ServiceSubmitCold)->Unit(benchmark::kMillisecond);

// The same submit answered from the fingerprint cache: connect + lookup +
// byte replay, no shard executed.  The gap to BM_ServiceSubmitCold is
// what the cache is worth on a repeated job.
void BM_ServiceSubmitCached(benchmark::State& state) {
  dist::Service::Options options;
  dist::Service service(options);
  service.start();
  const std::string address = service.address();
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w)
    workers.emplace_back(
        [address] { dist::ServiceWorker().run(address); });
  const dist::JobSpec job = bench_sweep_job();
  dist::submit_job(address, job);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::submit_job(address, job).document);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(job.size()));
  state.SetLabel("service points replayed/s (cache hits)");
  service.request_stop();
  service.wait();
  for (std::thread& t : workers) t.join();
}
BENCHMARK(BM_ServiceSubmitCached)->Unit(benchmark::kMillisecond);

// BM_ServiceSubmitCached with the span tracer armed: every guard on the
// submit path stamps clocks and the completed spans go through the ring
// mutex.  The delta to the untraced run is the whole telemetry bill on
// the cached fast path — the ~2% overhead budget, measured.
void BM_ServiceSubmitCachedTraced(benchmark::State& state) {
  obs::Tracer::global().enable(1 << 16);
  dist::Service::Options options;
  dist::Service service(options);
  service.start();
  const std::string address = service.address();
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w)
    workers.emplace_back(
        [address] { dist::ServiceWorker().run(address); });
  const dist::JobSpec job = bench_sweep_job();
  dist::submit_job(address, job);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::submit_job(address, job).document);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(job.size()));
  state.SetLabel("service points replayed/s (cache hits, tracer on)");
  service.request_stop();
  service.wait();
  for (std::thread& t : workers) t.join();
  obs::Tracer::global().disable();
}
BENCHMARK(BM_ServiceSubmitCachedTraced)->Unit(benchmark::kMillisecond);

// The per-event price of the instruments themselves, at a call site that
// cached its references the way the service does (function-local static):
// one relaxed counter inc plus one histogram observe per iteration.
void BM_MetricsOverhead(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench_events_total", "B");
  obs::Histogram& histogram = registry.histogram(
      "bench_seconds", "B",
      obs::Histogram::exponential_bounds(1e-4, 4.0, 10));
  std::uint64_t tick = 0;
  for (auto _ : state) {
    counter.inc();
    histogram.observe_micros(++tick & 1023);
    benchmark::DoNotOptimize(tick);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
  state.SetLabel("metric updates/s (counter inc + histogram observe)");
}
BENCHMARK(BM_MetricsOverhead);

// Bare steal-queue coordination: chop 4096 indices into 4-point shards,
// then lease/complete the lot — the lock-and-bookkeeping cost every shard
// pays on top of its compute, with no sockets or arithmetic attached.
void BM_ShardSteal(benchmark::State& state) {
  std::vector<std::size_t> indices(4096);
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::size_t shards = 0;
  for (auto _ : state) {
    dist::StealQueue queue(indices, 4);
    shards = queue.stats().shard_count;
    while (auto shard = queue.lease(1)) queue.complete(shard->id);
    benchmark::DoNotOptimize(queue.done());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shards));
  state.SetLabel("shards leased+completed/s");
}
BENCHMARK(BM_ShardSteal);

void BM_TransientStep(benchmark::State& state) {
  circuit::ColumnConfig cfg;
  cfg.scenario = circuit::PrechargeScenario::kAlwaysOff;
  const auto fixture = circuit::build_column_fixture(cfg);
  circuit::TransientOptions opt;
  opt.t_end = 1e-9;  // short window per iteration
  opt.dt = 0.5e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuit::simulate(fixture.circuit, {fixture.bl}, opt));
  }
  // steps per simulate call
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
  state.SetLabel("integrator steps/s");
}
BENCHMARK(BM_TransientStep);

void BM_ControllerEvaluate(benchmark::State& state) {
  ctrl::PrechargeController controller(512);
  ctrl::PrechargeController::CycleInputs in;
  in.lptest = true;
  in.phase = ctrl::Phase::kOperate;
  std::size_t col = 0;
  for (auto _ : state) {
    in.selected = col;
    benchmark::DoNotOptimize(controller.evaluate(in));
    col = (col + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          512);
  state.SetLabel("column elements/s");
}
BENCHMARK(BM_ControllerEvaluate);

}  // namespace

BENCHMARK_MAIN();
