// Experiment E13 — engineering micro-benchmarks (google-benchmark):
// throughput of the cycle simulator in both modes, full March runs, the
// switch-level transient integrator, and the gate-level controller.
#include <benchmark/benchmark.h>

#include "circuit/subcircuits.h"
#include "circuit/transient.h"
#include "core/fault_campaign.h"
#include "core/session.h"
#include "ctrl/precharge_control.h"
#include "engine/analytic_backend.h"
#include "faults/models.h"
#include "march/algorithms.h"

namespace {

using namespace sramlp;
using sram::CycleCommand;
using sram::Mode;
using sram::SramArray;
using sram::SramConfig;

void BM_FunctionalCycle(benchmark::State& state) {
  SramConfig cfg;
  cfg.geometry = {512, 512, 1};
  cfg.mode = Mode::kFunctional;
  SramArray array(cfg);
  std::size_t col = 0;
  for (auto _ : state) {
    CycleCommand cmd;
    cmd.row = 0;
    cmd.col_group = col;
    cmd.is_read = false;
    cmd.value = true;
    benchmark::DoNotOptimize(array.cycle(cmd));
    col = (col + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalCycle);

void BM_LowPowerCycle(benchmark::State& state) {
  SramConfig cfg;
  cfg.geometry = {512, 512, 1};
  cfg.mode = Mode::kLowPowerTest;
  SramArray array(cfg);
  std::size_t col = 0;
  for (auto _ : state) {
    CycleCommand cmd;
    cmd.row = 0;
    cmd.col_group = col;
    cmd.is_read = false;
    cmd.value = true;
    cmd.restore_row_transition = col == 511;
    benchmark::DoNotOptimize(array.cycle(cmd));
    col = (col + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LowPowerCycle);

void BM_MarchRun(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? Mode::kFunctional
                                        : Mode::kLowPowerTest;
  core::SessionConfig cfg;
  cfg.geometry = {64, 64, 1};
  cfg.mode = mode;
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    core::TestSession session(cfg);
    benchmark::DoNotOptimize(session.run(test));
  }
  // Cycles per run derive from the algorithm itself (operations per
  // address plus any delay elements), so swapping the March test cannot
  // silently skew the throughput numbers.
  const auto cycles_per_run =
      static_cast<std::int64_t>(test.cycle_count(cfg.geometry.words()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cycles_per_run);
  state.SetLabel(mode == Mode::kFunctional ? "functional (cycles/s)"
                                           : "low-power (cycles/s)");
}
BENCHMARK(BM_MarchRun)->Arg(0)->Arg(1);

// Backend face-off at the paper's full 512x512 scale: one fault-free March
// C- sweep point (both modes, PRR) through the cycle-accurate array vs the
// closed-form analytic backend.  The analytic backend must be >= 10x
// faster (in practice it is orders of magnitude faster: O(1) vs 2.6M
// simulated cycles per mode).
void BM_SweepPoint512_CycleAccurate(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TestSession::compare_modes(cfg, test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 March C- PRR points/s (cycle-accurate)");
}
BENCHMARK(BM_SweepPoint512_CycleAccurate)->Unit(benchmark::kMillisecond);

// Same sweep point through the per-column reference engine — the executable
// specification the bitsliced/cohort path is parity-tested against.  The
// default path must stay well ahead of this.
void BM_SweepPoint512_CycleAccurateReference(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  cfg.column_model = sram::ColumnModel::kPerColumnReference;
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TestSession::compare_modes(cfg, test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 March C- PRR points/s (per-column reference)");
}
BENCHMARK(BM_SweepPoint512_CycleAccurateReference)
    ->Unit(benchmark::kMillisecond);

void BM_SweepPoint512_Analytic(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::TestSession::compare_modes_analytic(cfg, test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 March C- PRR points/s (analytic backend)");
}
BENCHMARK(BM_SweepPoint512_Analytic)->Unit(benchmark::kMillisecond);

// Fault-campaign throughput at the paper's full scale: one stuck-at fault
// means two full cycle-accurate March C- runs (both modes) on a 512x512
// array — the workload CampaignRunner fans out per library entry.
void BM_Campaign512_PerFault(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();
  const std::vector<faults::FaultSpec> one_fault = {
      faults::FaultSpec{.kind = faults::FaultKind::kStuckAt1,
                        .victim = {17, 131},
                        .aggressor = {}}};
  const core::CampaignRunner runner(core::CampaignRunner::Options{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(cfg, test, one_fault));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("512x512 faults/s (serial, both modes)");
}
BENCHMARK(BM_Campaign512_PerFault)->Unit(benchmark::kMillisecond);

void BM_TransientStep(benchmark::State& state) {
  circuit::ColumnConfig cfg;
  cfg.scenario = circuit::PrechargeScenario::kAlwaysOff;
  const auto fixture = circuit::build_column_fixture(cfg);
  circuit::TransientOptions opt;
  opt.t_end = 1e-9;  // short window per iteration
  opt.dt = 0.5e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuit::simulate(fixture.circuit, {fixture.bl}, opt));
  }
  // steps per simulate call
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
  state.SetLabel("integrator steps/s");
}
BENCHMARK(BM_TransientStep);

void BM_ControllerEvaluate(benchmark::State& state) {
  ctrl::PrechargeController controller(512);
  ctrl::PrechargeController::CycleInputs in;
  in.lptest = true;
  in.phase = ctrl::Phase::kOperate;
  std::size_t col = 0;
  for (auto _ : state) {
    in.selected = col;
    benchmark::DoNotOptimize(controller.evaluate(in));
    col = (col + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          512);
  state.SetLabel("column elements/s");
}
BENCHMARK(BM_ControllerEvaluate);

}  // namespace

BENCHMARK_MAIN();
