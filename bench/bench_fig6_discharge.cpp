// Experiment E5 — reproduces the paper's Fig. 6 (device-level Spice study,
// Fig. 5 setup): interaction between unselected cells and floating
// bit-lines in the low-power test mode.
//
//   6a: BL discharges progressively to logic 0 in "nearly nine" 3 ns
//       cycles; BLB and node SB (both at VDD) are unaffected.
//   6b: the stress (power drawn out of the bit-line into the cell) decays
//       with the bit-line voltage — after a short time the cell is no
//       longer stressed.
//   6c: at the row hand-over the discharged pair overwrites the
//       opposite-valued cell of the next row (the faulty swap).
#include <cstdio>
#include <exception>
#include <vector>

#include "circuit/subcircuits.h"
#include "circuit/transient.h"
#include "util/ascii_chart.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using namespace sramlp::circuit;

util::Series wave_series(const Waveform& w, const char* name, char glyph,
                         double t_scale) {
  util::Series s;
  s.name = name;
  s.glyph = glyph;
  for (std::size_t i = 0; i < w.size(); ++i) {
    s.x.push_back(w.times()[i] * t_scale);
    s.y.push_back(w.values()[i]);
  }
  return s;
}

void run() {
  std::puts("== E5: Fig. 6 — cell vs floating bit-line interaction ==");
  std::puts("0.13 um, 3 ns cycle, 1.6 V; cell C(i,j) stores '1', C(i+1,j) "
            "stores '0'\n");

  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kAlwaysOff;
  cfg.handover_cycle = 10.0;
  cfg.cycles = 14.0;
  const auto fixture = build_column_fixture(cfg);

  TransientOptions opt;
  opt.t_end = fixture.t_end;
  opt.dt = 0.2e-12;
  opt.sample_every = 50e-12;
  const auto result = simulate(
      fixture.circuit,
      {fixture.bl, fixture.blb, fixture.s0, fixture.sb0, fixture.s1,
       fixture.sb1},
      opt);

  const double to_cycles = 1.0 / cfg.clock_period;

  // --- 6a: bit-line voltages -------------------------------------------
  util::ChartOptions chart;
  chart.width = 70;
  chart.height = 14;
  chart.autoscale_y = false;
  chart.y_min = 0.0;
  chart.y_max = 1.7;
  chart.x_label = "time [clock cycles];  WL hand-over at cycle 10";
  chart.y_label = "Fig. 6a — bit-line voltages [V]";
  std::fputs(
      util::render_chart({wave_series(result.wave("bl"), "BL", '*', to_cycles),
                          wave_series(result.wave("blb"), "BLB", '-',
                                      to_cycles)},
                         chart)
          .c_str(),
      stdout);

  const auto t_cross =
      result.wave("bl").time_of_crossing(0.05 * cfg.vdd, false);
  std::printf("\nBL crosses 5%% of VDD after %.1f clock cycles "
              "(paper: nearly nine)\n",
              t_cross ? *t_cross * to_cycles : -1.0);

  // --- 6b: stress power decays with the bit-line -----------------------
  // Power flowing out of the bit-line into the cell: P = -C * V * dV/dt.
  const auto& bl = result.wave("bl");
  util::Series stress;
  stress.name = "P(RES)";
  stress.glyph = '*';
  for (std::size_t i = 1; i + 1 < bl.size(); ++i) {
    const double dt = bl.times()[i + 1] - bl.times()[i - 1];
    const double dv = bl.values()[i + 1] - bl.values()[i - 1];
    const double p = -cfg.c_bitline * bl.values()[i] * dv / dt;
    stress.x.push_back(bl.times()[i] * to_cycles);
    stress.y.push_back(units::as_uW(std::max(p, 0.0)));
  }
  util::ChartOptions chart_b;
  chart_b.width = 70;
  chart_b.height = 10;
  chart_b.x_label = "time [clock cycles]";
  chart_b.y_label = "\nFig. 6b — cell stress power [uW] (decays with BL)";
  std::fputs(util::render_chart({stress}, chart_b).c_str(), stdout);

  // --- 6c: the faulty swap at the hand-over -----------------------------
  util::ChartOptions chart_c;
  chart_c.width = 70;
  chart_c.height = 10;
  chart_c.autoscale_y = false;
  chart_c.y_min = 0.0;
  chart_c.y_max = 1.7;
  chart_c.x_label = "time [clock cycles]";
  chart_c.y_label = "\nFig. 6c — next row's cell nodes at the hand-over [V]";
  std::fputs(
      util::render_chart(
          {wave_series(result.wave("s1"), "S(i+1)", '*', to_cycles),
           wave_series(result.wave("sb1"), "SB(i+1)", '-', to_cycles)},
          chart_c)
          .c_str(),
      stdout);
  std::printf(
      "\ncell C(i+1,j) stored '0' (S = VDD); after the hand-over at cycle "
      "10\nits S node is %.2f V — the discharged bit-line forced the faulty "
      "swap\n(the Fig. 7 restore cycle prevents this; see "
      "bench_fig7_row_transition).\n",
      result.wave("s1").back_value());
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig6_discharge failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
