// Experiment E4 — reproduces the paper's Fig. 4: in the low-power test
// mode, exactly two pre-charge circuits are active per clock cycle (the
// selected column and the one that follows), against all N in functional
// mode.  The map below marks active pre-charge circuits (#) per cycle as a
// March element walks one word line.
#include <cstdio>
#include <exception>

#include "core/session.h"
#include "march/parser.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sramlp;
using sram::CycleCommand;
using sram::Mode;
using sram::SramArray;
using sram::SramConfig;

void walk_and_map(Mode mode, std::size_t cols) {
  SramConfig cfg;
  cfg.geometry = {2, cols, 1};
  cfg.mode = mode;
  SramArray array(cfg);

  std::printf("\n-- %s --\n       columns 0..%zu\n",
              mode == Mode::kFunctional ? "functional mode"
                                        : "low-power test mode",
              cols - 1);
  util::RunningStats active_per_cycle;
  for (std::size_t c = 0; c < cols; ++c) {
    CycleCommand cmd;
    cmd.row = 0;
    cmd.col_group = c;
    cmd.is_read = false;
    cmd.value = false;
    array.cycle(cmd);
    std::size_t active = 0;
    std::string map;
    for (std::size_t j = 0; j < cols; ++j) {
      const bool on = array.precharge_was_active(j);
      map += on ? '#' : '.';
      if (on) ++active;
    }
    active_per_cycle.add(static_cast<double>(active));
    std::printf("cycle %2zu  [%s]  %zu active\n", c, map.c_str(), active);
  }
  std::printf("average active pre-charge circuits per cycle: %.2f\n",
              active_per_cycle.mean());
}

void run() {
  std::puts("== E4: Fig. 4 — proposed pre-charge activation ==");
  const std::size_t cols = 16;
  walk_and_map(Mode::kFunctional, cols);
  walk_and_map(Mode::kLowPowerTest, cols);
  std::puts(
      "\npaper Fig. 4: with column j selected, only pre-charge j and j+1\n"
      "are active; the last column of the scan has no follower.  All other\n"
      "circuits idle — on a 512-column array that silences 510 of 512.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig4_activity_map failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
