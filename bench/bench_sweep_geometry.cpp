// Experiment E10 — the paper's §5 claim that "this result can be extended
// to all SRAM memories": PRR as a function of the array organisation.
// The sweep also exposes the crossover the paper does not discuss: on very
// narrow arrays the follower-recharge overhead eats the saving.
//
// The whole grid goes through core::SweepRunner twice — once forced onto
// the bitsliced cycle-accurate engine, once onto the closed-form analytic
// backend — with the points fanned over the thread pool in both cases.
#include <cstdio>
#include <exception>

#include "core/sweep.h"
#include "march/algorithms.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using core::BackendChoice;
using core::SweepGrid;
using core::SweepRunner;

void sweep_columns() {
  util::Table t({"organisation", "PF [pJ/cyc]", "PLPT [pJ/cyc]",
                 "PRR (sim)", "PRR (analytic)"});

  SweepGrid grid;
  grid.algorithms = {march::algorithms::march_c_minus()};
  for (const std::size_t cols : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    // Keep the cell count near 64k so runs stay comparable and fast.
    const std::size_t rows = std::max<std::size_t>(1, 65536 / cols);
    grid.geometries.push_back({rows, cols, 1});
  }

  const auto sim =
      SweepRunner({0, BackendChoice::kCycleAccurate}).run(grid);
  const auto fast = SweepRunner({0, BackendChoice::kAnalytic}).run(grid);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const sram::Geometry& g = grid.geometries[sim[i].geometry];
    t.add_row({std::to_string(g.rows) + "x" + std::to_string(g.cols),
               util::fmt(units::as_pJ(sim[i].prr.functional.energy_per_cycle_j)),
               util::fmt(units::as_pJ(sim[i].prr.low_power.energy_per_cycle_j)),
               util::fmt_percent(sim[i].prr.prr),
               util::fmt_percent(fast[i].prr.prr)});
  }
  std::fputs(t.str("PRR vs #columns (March C-, ~64k cells)").c_str(),
             stdout);
}

void sweep_rows() {
  util::Table t({"organisation", "PRR (sim)"});
  SweepGrid grid;
  grid.algorithms = {march::algorithms::mats_plus()};
  for (const std::size_t rows : {64u, 128u, 256u, 512u})
    grid.geometries.push_back({rows, 512, 1});

  const auto sim =
      SweepRunner({0, BackendChoice::kCycleAccurate}).run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const sram::Geometry& g = grid.geometries[sim[i].geometry];
    t.add_row({std::to_string(g.rows) + "x512",
               util::fmt_percent(sim[i].prr.prr)});
  }
  std::fputs(
      t.str("\nPRR vs #rows at 512 columns (MATS+) — row count is nearly "
            "irrelevant")
          .c_str(),
      stdout);
}

void run() {
  std::puts("== E10: §5 — PRR across array organisations ==\n");
  sweep_columns();
  sweep_rows();
  std::puts(
      "\nthe saving scales with (#col - 2) * P_A while the overheads are\n"
      "column-independent per cycle, so PRR grows with row width and\n"
      "saturates near the pre-charge share of total power.  Narrow arrays\n"
      "(<~32 columns) can even lose energy — the technique targets the\n"
      "wide arrays the paper's ITRS motivation is about.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_sweep_geometry failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
