// Experiment E15 — calibration-robustness ablation.
//
// The headline ~50 % PRR rests on a calibrated 0.13 um parameter set
// (DESIGN.md §5).  This bench perturbs each load-bearing parameter across
// a generous range and reports the resulting PRR, showing which constants
// the conclusion actually depends on (the RES fight current and the
// peripheral energy scale) and which barely matter (decay constant, read
// swing, word-line duty, swap threshold).
#include <cmath>
#include <cstdio>
#include <exception>
#include <functional>

#include "core/session.h"
#include "march/algorithms.h"
#include "util/table.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using power::TechnologyParams;

double prr_with(const std::function<void(TechnologyParams&)>& tweak,
                double duty = 0.5, double swap_frac = 0.5) {
  SessionConfig cfg;
  cfg.geometry = {128, 512, 1};
  cfg.tech = TechnologyParams::tech_0p13um();
  tweak(cfg.tech);
  cfg.wordline_duty = duty;
  cfg.swap_threshold_frac = swap_frac;
  return TestSession::compare_modes(cfg, march::algorithms::march_c_minus())
      .prr;
}

void run() {
  std::puts("== E15: ablation — PRR sensitivity to model parameters ==\n");
  const double baseline = prr_with([](TechnologyParams&) {});

  util::Table t({"parameter", "x0.5", "baseline", "x2.0", "sensitivity"});

  struct Knob {
    const char* name;
    std::function<void(TechnologyParams&, double)> scale;
  };
  const Knob knobs[] = {
      {"RES fight current (P_A)",
       [](TechnologyParams& p, double f) { p.res_fight_current *= f; }},
      {"bit-line capacitance",
       [](TechnologyParams& p, double f) { p.c_bitline *= f; }},
      {"decay constant tau",
       [](TechnologyParams& p, double f) { p.decay_tau_cycles *= f; }},
      {"read swing",
       [](TechnologyParams& p, double f) {
         p.read_swing = std::min(p.read_swing * f, 0.9 * p.vdd);
       }},
      {"clock-tree energy",
       [](TechnologyParams& p, double f) { p.e_clock_tree *= f; }},
      {"decoder+bus energy",
       [](TechnologyParams& p, double f) {
         p.e_decoder_per_address_bit *= f;
         p.e_addressbus_per_bit *= f;
       }},
      {"sense/write/io energy",
       [](TechnologyParams& p, double f) {
         p.e_sense_amp_per_bit *= f;
         p.e_write_driver_per_bit *= f;
         p.e_data_io_per_bit *= f;
       }},
  };

  for (const Knob& knob : knobs) {
    const double lo = prr_with([&](TechnologyParams& p) { knob.scale(p, 0.5); });
    const double hi = prr_with([&](TechnologyParams& p) { knob.scale(p, 2.0); });
    const double spread = std::fabs(hi - lo);
    t.add_row({knob.name, util::fmt_percent(lo), util::fmt_percent(baseline),
               util::fmt_percent(hi),
               spread > 0.15 ? "HIGH" : spread > 0.05 ? "medium" : "low"});
  }

  // Simulator-policy knobs (not technology): duty and swap threshold.
  t.add_row({"word-line duty (0.25 / 0.5 / 1.0)",
             util::fmt_percent(prr_with([](TechnologyParams&) {}, 0.25)),
             util::fmt_percent(baseline),
             util::fmt_percent(prr_with([](TechnologyParams&) {}, 1.0)),
             "low"});
  t.add_row({"swap threshold (0.25 / 0.5 / 0.75)",
             util::fmt_percent(
                 prr_with([](TechnologyParams&) {}, 0.5, 0.25)),
             util::fmt_percent(baseline),
             util::fmt_percent(prr_with([](TechnologyParams&) {}, 0.5, 0.75)),
             "low"});

  std::fputs(
      t.str("March C- on 128x512; each parameter scaled alone").c_str(),
      stdout);
  std::puts(
      "\nreading: the conclusion 'LP test mode halves test power' needs the\n"
      "RES fight current and the peripheral energy scale to be in the right\n"
      "ratio (the paper anchors that ratio via its measured ~50 % and the\n"
      "70-80 % pre-charge share of [8]); everything else moves PRR by only\n"
      "a few points across 4x ranges.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ablation_parameters failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
