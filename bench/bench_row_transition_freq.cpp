// Experiment E9 — the paper's §5 row-transition frequency formula:
//   F(row transition) = 1 / (#March-element-operations * #memory-columns)
// "for a one-operation element ... once each 512 clock cycles; for a
//  four-operation element ... once every 2048".
#include <cstdio>
#include <exception>

#include "core/paper_reference.h"
#include "core/session.h"
#include "march/parser.h"
#include "power/analytic.h"
#include "util/table.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using sram::Mode;

void run() {
  std::puts("== E9: §5 — row-transition frequency ==\n");
  SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  cfg.mode = Mode::kLowPowerTest;

  const power::AnalyticModel model(power::TechnologyParams::tech_0p13um(),
                                   512, 512);

  util::Table t({"element", "#ops", "formula period [cycles]",
                 "measured period [cycles]", "paper"});

  struct Case {
    const char* notation;
    int ops;
    double paper;
  };
  const Case cases[] = {
      {"{ B(w0) }", 1, core::paper_claims::kRowTransitionPeriod1op},
      {"{ B(w0,r0) }", 2, 1024.0},
      {"{ B(w0,r0,w1,r1) }", 4,
       core::paper_claims::kRowTransitionPeriod4op},
  };
  for (const auto& c : cases) {
    TestSession session(cfg);
    const auto result =
        session.run(march::parse_march("probe", c.notation));
    const double measured =
        static_cast<double>(result.cycles) /
        static_cast<double>(result.stats.row_transitions + 1);
    t.add_row({c.notation, util::fmt_count(c.ops),
               util::fmt(model.row_transition_period_cycles(c.ops), 0),
               util::fmt(measured, 1),
               c.paper > 0 ? util::fmt(c.paper, 0) : "-"});
  }
  std::fputs(t.str("512 columns, low-power test mode").c_str(), stdout);
  std::puts(
      "\nthe restore (and the LPtest line toggle) occur once per period,\n"
      "so their contribution to the average power per cycle is negligible\n"
      "— exactly the paper's argument for neglecting sources 2 and 3.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_row_transition_freq failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
