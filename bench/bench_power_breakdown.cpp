// Experiment E8 — the paper's §5 analysis: the five test-mode power
// sources, measured per cycle on the 512x512 array in both modes.
//
//   1. pre-charge circuits        (RES fight, P_A on n-1 vs 1 column)
//   2. array row transition       (P_B, LP mode only, rare)
//   3. LPtest signal driver       (LP mode only, rare)
//   4. RES consumption in cells   (3 orders below the pre-charge share)
//   5. modified control logic     (negligible)
#include <cstdio>
#include <exception>

#include "core/session.h"
#include "march/algorithms.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using power::EnergySource;
using sram::Mode;

void breakdown_for(const core::SessionResult& result, const char* title) {
  util::Table t({"source", "pJ/cycle", "share of supply"});
  const double cycles = static_cast<double>(result.cycles);
  for (const auto& entry : result.meter.breakdown()) {
    const auto& info = power::info(entry.source);
    std::string name = info.name;
    if (!info.supply_drawn) name += " (not supply-drawn)";
    t.add_row({name, util::fmt(units::as_pJ(entry.energy_j / cycles), 4),
               info.supply_drawn ? util::fmt_percent(entry.share) : "-"});
  }
  std::fputs(t.str(title).c_str(), stdout);
  std::printf("total supply: %.2f pJ/cycle;  pre-charge-related share: %s\n\n",
              units::as_pJ(result.energy_per_cycle_j),
              util::fmt_percent(result.meter.precharge_total() /
                                result.meter.supply_total())
                  .c_str());
}

void run() {
  std::puts("== E8: §5 — the five power sources, functional vs LP ==\n");
  SessionConfig cfg;
  cfg.geometry = sram::Geometry::paper_512x512();
  const auto test = march::algorithms::march_c_minus();

  const auto cmp = TestSession::compare_modes(cfg, test);
  breakdown_for(cmp.functional, "functional test mode (March C-, 512x512)");
  breakdown_for(cmp.low_power, "low-power test mode (March C-, 512x512)");

  // The paper's per-source claims, verified numerically.
  const auto& lp = cmp.low_power.meter;
  const auto& fn = cmp.functional.meter;
  util::Table claims({"paper claim", "measured", "holds?"});
  const double res_fn = fn.total(EnergySource::kPrechargeResFight);
  const double res_lp = lp.total(EnergySource::kPrechargeResFight);
  claims.add_row({"1. (n-1) RES columns functional vs ~1 in LP",
                  util::fmt(res_fn / res_lp, 0) + "x reduction",
                  res_fn / res_lp > 100 ? "yes" : "no"});
  const double row_share = lp.total(EnergySource::kRowTransitionRestore) /
                           lp.supply_total();
  claims.add_row({"2. row-transition restore is amortised away",
                  util::fmt_percent(row_share) + " of LP supply",
                  row_share < 0.10 ? "yes" : "no"});
  const double lpt_share =
      lp.total(EnergySource::kLpTestDriver) / lp.supply_total();
  claims.add_row({"3. LPtest driver negligible",
                  util::fmt_percent(lpt_share, 3) + " of LP supply",
                  lpt_share < 0.001 ? "yes" : "no"});
  const double cell_ratio = fn.total(EnergySource::kCellRes) /
                            fn.total(EnergySource::kPrechargeResFight);
  claims.add_row({"4. cell RES ~3 orders below pre-charge",
                  "ratio " + util::fmt(cell_ratio, 5),
                  cell_ratio < 5e-3 ? "yes" : "no"});
  const double ctrl_share =
      lp.total(EnergySource::kControlLogic) / lp.supply_total();
  claims.add_row({"5. control logic negligible",
                  util::fmt_percent(ctrl_share, 4) + " of LP supply",
                  ctrl_share < 0.001 ? "yes" : "no"});
  std::fputs(claims.str("§5 source-by-source verification").c_str(), stdout);
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_power_breakdown failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
