// Experiment E11 — the paper's §6 future work, implemented: word-oriented
// memories.  A word access activates `w` adjacent columns, the LP mode
// pre-charges the selected and the following word group (2w columns), and
// the saving drops from (#col - 2) * P_A to (#col - 2w) * P_A.
#include <cstdio>
#include <exception>

#include "core/session.h"
#include "march/algorithms.h"
#include "power/analytic.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;

void run() {
  std::puts("== E11: §6 future work — word-oriented memories ==\n");
  const auto test = march::algorithms::march_c_minus();
  const auto counts = test.counts();
  const auto tech = power::TechnologyParams::tech_0p13um();

  util::Table t({"word width", "words", "PF [pJ/cyc]", "PLPT [pJ/cyc]",
                 "PRR (sim)", "PRR (model)"});
  for (const std::size_t w : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SessionConfig cfg;
    // 512 columns; scale rows down so total cycles stay bounded.
    cfg.geometry = {128, 512, w};
    const auto cmp = TestSession::compare_modes(cfg, test);
    const power::AnalyticModel model(tech, 128, 512, w);
    t.add_row({util::fmt_count(static_cast<long long>(w)),
               std::to_string(128 * (512 / w)),
               util::fmt(units::as_pJ(cmp.functional.energy_per_cycle_j)),
               util::fmt(units::as_pJ(cmp.low_power.energy_per_cycle_j)),
               util::fmt_percent(cmp.prr),
               util::fmt_percent(model.prr(counts))});
  }
  std::fputs(
      t.str("128x512 array, March C-, word width swept").c_str(), stdout);
  std::puts(
      "\nbit-oriented memories (w = 1, the paper's scope) save the most;\n"
      "each doubling of the word width halves the idle columns the mode\n"
      "can silence, and the functional-mode baseline also spends more per\n"
      "operation — PRR decays gracefully rather than collapsing.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_word_oriented failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
