// Experiment E1 — reproduces the paper's Table 1:
//   "PRR for different March algorithms" on a 512x512, 0.13 um, 1.6 V,
//   3 ns-cycle SRAM.
//
// For each of the five algorithms the harness runs the full March test
// cycle-accurately in functional mode and in low-power test mode, measures
// the average supply energy per cycle (PF, PLPT) and prints the Power
// Reduction Ratio next to the paper's published value, plus the closed-form
// model's prediction (paper §5 formulas).
#include <cstdio>
#include <exception>

#include "core/paper_reference.h"
#include "core/sweep.h"
#include "march/algorithms.h"
#include "power/analytic.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace sramlp;

void run() {
  const sram::Geometry geometry = sram::Geometry::paper_512x512();
  const auto tech = power::TechnologyParams::tech_0p13um();
  const power::AnalyticModel model(tech, geometry.rows, geometry.cols);

  // All five Table 1 algorithms as one sweep grid: the points fan out
  // over the thread pool, each through the bitsliced cycle-accurate
  // engine (results[i] is algorithm i whatever the worker count).
  core::SweepGrid grid;
  grid.geometries = {geometry};
  grid.algorithms = march::algorithms::table1();
  grid.base.tech = tech;
  const auto points =
      core::SweepRunner({0, core::BackendChoice::kCycleAccurate}).run(grid);

  util::Table table({"Algorithm", "#elm", "#oper", "#read", "#write",
                     "PF [pJ/cyc]", "PLPT [pJ/cyc]", "PRR (sim)",
                     "PRR (model)", "PRR (paper)"});

  for (const auto& point : points) {
    const march::MarchTest& test = grid.algorithms[point.algorithm];
    const core::PrrComparison& cmp = point.prr;
    const auto counts = test.counts();

    double paper_prr = 0.0;
    for (const auto& row : core::kTable1)
      if (counts.name == row.algorithm) paper_prr = row.prr;

    const march::MarchStats stats = test.stats();
    table.add_row({test.name(), util::fmt_count(stats.elements),
                   util::fmt_count(stats.operations),
                   util::fmt_count(stats.reads),
                   util::fmt_count(stats.writes),
                   util::fmt(units::as_pJ(cmp.functional.energy_per_cycle_j)),
                   util::fmt(units::as_pJ(cmp.low_power.energy_per_cycle_j)),
                   util::fmt_percent(cmp.prr),
                   util::fmt_percent(model.prr(counts)),
                   util::fmt_percent(paper_prr)});
  }

  std::puts("== E1: Table 1 — PRR for different March algorithms ==");
  std::puts("array 512x512, 0.13 um technology, VDD 1.6 V, 3 ns cycle\n");
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reports ~47-51 % across the five algorithms; the simulated\n"
      "and closed-form PRR must land in that band and track each other.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_table1_prr failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
