// Experiment E14 — data-background independence.
//
// The paper's Fig. 7 restore "preserves the data background independency,
// which means that any value can be stored in the cells."  This bench runs
// March C- under every built-in background pattern in both modes and shows
// that (a) the run stays correct (no mismatches, no swaps) and (b) the
// power picture — PF, PLPT and PRR — does not depend on the background.
#include <cstdio>
#include <exception>

#include "core/session.h"
#include "march/algorithms.h"
#include "sram/background.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using sram::DataBackground;

void run() {
  std::puts("== E14: data-background independence (Fig. 7 property) ==\n");
  const auto test = march::algorithms::march_c_minus();

  util::Table t({"background", "PF [pJ/cyc]", "PLPT [pJ/cyc]", "PRR",
                 "mismatches", "faulty swaps"});
  for (const auto kind : DataBackground::kinds()) {
    SessionConfig cfg;
    cfg.geometry = {128, 256, 1};
    cfg.background = DataBackground(kind);
    const auto cmp = TestSession::compare_modes(cfg, test);
    t.add_row({DataBackground(kind).name(),
               util::fmt(units::as_pJ(cmp.functional.energy_per_cycle_j)),
               util::fmt(units::as_pJ(cmp.low_power.energy_per_cycle_j)),
               util::fmt_percent(cmp.prr),
               util::fmt_count(static_cast<long long>(
                   cmp.functional.mismatches + cmp.low_power.mismatches)),
               util::fmt_count(static_cast<long long>(
                   cmp.low_power.stats.faulty_swaps))});
  }
  std::fputs(t.str("March C- on 128x256, every background, both modes")
                 .c_str(),
             stdout);

  // The hazard case: disable the restore and the checkerboard background
  // (worst case: every row hand-over opposes half the columns) corrupts
  // the die.
  SessionConfig broken;
  broken.geometry = {128, 256, 1};
  broken.mode = sram::Mode::kLowPowerTest;
  broken.row_transition_restore = false;
  broken.background = DataBackground::checkerboard();
  TestSession session(broken);
  const auto result = session.run(test);
  std::printf(
      "\nwithout the restore (checkerboard background): %llu faulty swaps, "
      "%llu false detections\n",
      static_cast<unsigned long long>(result.stats.faulty_swaps),
      static_cast<unsigned long long>(result.mismatches));
  std::puts(
      "\nPRR is identical across backgrounds (energy bookkeeping is "
      "data-independent)\nand every background passes cleanly — the "
      "restore earns the paper's\n'data background independency' claim.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_background_sweep failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
