// Experiment E6 — reproduces the paper's Fig. 7 at both abstraction levels:
// the faulty swap during row transitions in the low-power test mode, and
// the one-cycle functional restore that prevents it while preserving
// data-background independence.
#include <cstdio>
#include <exception>

#include "circuit/subcircuits.h"
#include "circuit/transient.h"
#include "core/session.h"
#include "march/algorithms.h"
#include "util/table.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::TestSession;
using sram::Mode;

// Array-level: run March C- on a 64x64 array in LP mode with and without
// the restore, across four data backgrounds.
void array_level() {
  util::Table table({"data background", "restore", "faulty swaps",
                     "false detections", "verdict"});

  for (const bool restore : {true, false}) {
    for (const char* background :
         {"solid 0", "solid 1", "checkerboard", "row stripes"}) {
      SessionConfig cfg;
      cfg.geometry = {64, 64, 1};
      cfg.mode = Mode::kLowPowerTest;
      cfg.row_transition_restore = restore;
      TestSession session(cfg);

      // Pre-load the background (the March init element will overwrite it,
      // but intermediate element states still differ per background).
      for (std::size_t r = 0; r < 64; ++r)
        for (std::size_t c = 0; c < 64; ++c) {
          bool v = false;
          if (std::string(background) == "solid 1") v = true;
          if (std::string(background) == "checkerboard") v = (r + c) % 2;
          if (std::string(background) == "row stripes") v = r % 2;
          session.array().poke(r, c, v);
        }

      const auto result = session.run(march::algorithms::march_c_minus());
      table.add_row({background, restore ? "on" : "off",
                     util::fmt_count(static_cast<long long>(
                         result.stats.faulty_swaps)),
                     util::fmt_count(static_cast<long long>(
                         result.mismatches)),
                     result.mismatches == 0 ? "clean pass"
                                            : "corrupted (would fail a good "
                                              "die)"});
    }
  }
  std::fputs(table.str("March C- on 64x64, low-power test mode").c_str(),
             stdout);
}

// Device level: the same story on the Fig. 5 two-cell column.
void device_level() {
  util::Table table({"scenario", "cell C(i+1,j) before", "after hand-over",
                     "swapped?"});
  for (const auto scenario :
       {circuit::PrechargeScenario::kAlwaysOff,
        circuit::PrechargeScenario::kRestoreAtHandover}) {
    circuit::ColumnConfig cfg;
    cfg.scenario = scenario;
    const auto fixture = circuit::build_column_fixture(cfg);
    circuit::TransientOptions opt;
    opt.t_end = fixture.t_end;
    opt.dt = 0.2e-12;
    const auto result =
        circuit::simulate(fixture.circuit, {fixture.s1}, opt);
    const double before = result.wave("s1").front_value();
    const double after = result.wave("s1").back_value();
    const bool swapped = (before > 0.8) != (after > 0.8);
    table.add_row(
        {scenario == circuit::PrechargeScenario::kAlwaysOff
             ? "no restore (hazard)"
             : "restore cycle (paper's fix)",
         util::fmt(before, 2) + " V", util::fmt(after, 2) + " V",
         swapped ? "YES - faulty swap" : "no"});
  }
  std::fputs(
      table.str("device level (Fig. 5 fixture, 0.13 um)").c_str(), stdout);
}

void run() {
  std::puts("== E6: Fig. 7 — row-transition restore vs faulty swap ==\n");
  device_level();
  std::puts("");
  array_level();
  std::puts(
      "\npaper Fig. 7: without the restore, bit-lines driven by row i "
      "overwrite\nopposite-valued cells of row i+1 (C_BL >> C_cell).  "
      "Activating every\npre-charge circuit for the single cycle of the "
      "last operation on the row\neliminates all swaps for every data "
      "background.");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig7_row_transition failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
