// Experiment E7 — reproduces the paper's Fig. 8 claims about the modified
// pre-charge control logic:
//   * the per-column element is one NAND + one 2:1 mux = ten transistors;
//   * its truth table implements "Pr_j when selected or functional,
//     CSbar_{j-1} otherwise";
//   * switching activity is O(1) per column advance (§5 source 5) and its
//     energy is negligible against a single bit-line event;
//   * the transmission-gate mux passes both edges rail-to-rail with minimal
//     delay, unlike a single pass transistor (§4 design choice).
#include <cmath>
#include <cstdio>
#include <exception>

#include "ctrl/delay.h"
#include "ctrl/precharge_control.h"
#include "power/technology.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace sramlp;

void truth_table() {
  util::Table t({"LPtest", "CS_j", "CS_{j-1}", "Pr_j", "NPr_j",
                 "pre-charge"});
  for (int mask = 0; mask < 16; ++mask) {
    ctrl::ElementInputs in;
    in.lptest = (mask & 8) != 0;
    in.cs_j = (mask & 4) != 0;
    in.cs_prev = (mask & 2) != 0;
    in.pr_j = (mask & 1) != 0;
    const bool npr = ctrl::element_npr(in);
    t.add_row({in.lptest ? "1" : "0", in.cs_j ? "1" : "0",
               in.cs_prev ? "1" : "0", in.pr_j ? "1" : "0",
               npr ? "1" : "0", npr ? "OFF" : "ON"});
  }
  std::fputs(t.str("element truth table (active-low NPr_j)").c_str(),
             stdout);
}

void transistor_budget() {
  ctrl::PrechargeController c(512);
  util::Table t({"item", "value"});
  t.add_row({"transistors per element (paper)", "10"});
  t.add_row({"transistors per element (ours)",
             util::fmt_count(ctrl::kTransistorsPerElement)});
  t.add_row({"512-column array overhead",
             util::fmt_count(c.added_transistors()) + " transistors"});
  t.add_row({"with descending-scan support (our extension)",
             util::fmt_count(c.added_transistors(true)) + " transistors"});
  t.add_row({"6T cells in the 512x512 array", "1572864 transistors"});
  t.add_row({"relative overhead",
             util::fmt(100.0 * 5120.0 / 1572864.0, 3) + " % of the array"});
  std::fputs(t.str("\ntransistor budget").c_str(), stdout);
}

void switching_activity() {
  ctrl::PrechargeController c(512);
  ctrl::PrechargeController::CycleInputs in;
  in.lptest = true;
  in.phase = ctrl::Phase::kOperate;
  // Walk a full row and count output toggles.
  in.selected = 0;
  c.evaluate(in);
  const auto start = c.switching_events();
  for (std::size_t j = 1; j < 512; ++j) {
    in.selected = j;
    c.evaluate(in);
  }
  const double toggles_per_advance =
      static_cast<double>(c.switching_events() - start) / 511.0;

  const auto tech = power::TechnologyParams::tech_0p13um();
  const double e_per_advance =
      toggles_per_advance * tech.e_control_element_switch();

  util::Table t({"quantity", "value"});
  t.add_row({"NPr toggles per column advance",
             util::fmt(toggles_per_advance, 2)});
  t.add_row({"control energy per advance",
             util::fmt(units::as_fJ(e_per_advance), 3) + " fJ"});
  t.add_row({"one bit-line full restore",
             util::fmt(units::as_fJ(tech.e_write_restore()), 0) + " fJ"});
  t.add_row({"ratio",
             util::fmt(e_per_advance / tech.e_write_restore(), 5)});
  std::fputs(
      t.str("\nswitching activity (paper §5.5: negligible)").c_str(),
      stdout);
}

void pass_device_timing() {
  util::Table t({"mux pass device", "edge", "delay [ps]", "settles at [V]",
                 "full rail?"});
  for (const auto device : {circuit::PassDevice::kTransmissionGate,
                            circuit::PassDevice::kNmosPassTransistor}) {
    for (const bool rising : {true, false}) {
      const auto timing = ctrl::measure_pass_edge(device, rising);
      const std::string device_name =
          device == circuit::PassDevice::kTransmissionGate
              ? "transmission gate (paper)"
              : "single NMOS pass";
      const std::string delay =
          std::isfinite(timing.delay_s)
              ? util::fmt(units::as_ps(timing.delay_s), 1)
              : std::string("never reaches 50 %");
      t.add_row({device_name, rising ? "0 -> 1" : "1 -> 0", delay,
                 util::fmt(timing.v_final, 2),
                 timing.reaches_full_rail ? "yes" : "NO"});
    }
  }
  std::fputs(
      t.str("\n§4 design choice: transmission gate vs pass transistor")
          .c_str(),
      stdout);
}

void run() {
  std::puts("== E7: Fig. 8 — modified pre-charge control logic ==\n");
  truth_table();
  transistor_budget();
  switching_activity();
  pass_device_timing();
  std::puts(
      "\npaper: ten added transistors per column; the NAND forces the\n"
      "functional path for the selected column; the transmission gate "
      "keeps\nboth Pr_j transitions fast and full-swing, which a single "
      "pass\ntransistor cannot (it loses a threshold on the rising edge).");
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig8_control_logic failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
