// Experiment E3 — reproduces the paper's Fig. 3: the word-line-after-
// word-line access order, contrasted with the other DOF-1-legal orders the
// library provides (any of which functional mode accepts, but only the
// first of which enables the low-power test mode).
#include <cstdio>
#include <exception>

#include "march/address_order.h"
#include "util/table.h"

namespace {

using namespace sramlp;
using march::AddressOrder;

void print_order_grid(const AddressOrder& order) {
  // Visit-step number laid out on the array grid.
  const std::size_t rows = order.rows();
  const std::size_t cols = order.col_groups();
  std::vector<std::vector<std::size_t>> step(
      rows, std::vector<std::size_t>(cols, 0));
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& a = order.at(i, march::Direction::kUp);
    step[a.row][a.col] = i;
  }
  std::printf("%s (step number at each cell):\n",
              march::to_string(order.kind()).c_str());
  for (std::size_t r = 0; r < rows; ++r) {
    std::fputs("   ", stdout);
    for (std::size_t c = 0; c < cols; ++c)
      std::printf(" %3zu", step[r][c]);
    std::printf("   <- word line %zu\n", r);
  }
}

void run() {
  std::puts("== E3: Fig. 3 — access order 'word line after word line' ==\n");
  const std::size_t rows = 4;
  const std::size_t cols = 8;

  print_order_grid(AddressOrder::word_line_after_word_line(rows, cols));
  std::puts(
      "\nall m cells of word line 0 first, then word line 1, ... —\n"
      "consecutive operations always hit adjacent columns, so only the\n"
      "selected and the following column ever need pre-charge.\n");

  print_order_grid(AddressOrder::fast_row(rows, cols));
  std::puts("");
  print_order_grid(AddressOrder::pseudo_random(rows, cols, 2006));

  util::Table table({"order", "LP-mode capable", "DOF-1 legal"});
  for (const auto& order :
       {AddressOrder::word_line_after_word_line(rows, cols),
        AddressOrder::fast_row(rows, cols),
        AddressOrder::pseudo_random(rows, cols, 2006),
        AddressOrder::address_complement(rows, cols),
        AddressOrder::gray_code(rows, cols)}) {
    table.add_row({march::to_string(order.kind()),
                   order.is_word_line_after_word_line() ? "yes" : "no",
                   "yes"});
  }
  std::puts("");
  std::fputs(table.str("March DOF-1: any address permutation is a valid "
                       "'up' sequence").c_str(),
             stdout);
}

}  // namespace

int main() {
  try {
    run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fig3_addressing failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
