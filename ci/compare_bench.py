#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against the checked-in baseline.

Usage: compare_bench.py CURRENT.json [BASELINE.json]

Prints one line per benchmark with the slowdown ratio and emits a GitHub
Actions ::warning:: annotation for anything past the regression threshold.
Shared CI runners are far too noisy to gate a build on timings, so the
script NEVER fails the job: it always exits 0 unless the inputs are
unreadable (a crash upstream should already have failed the run step).
"""

import json
import sys

THRESHOLD = 1.5  # warn past a 1.5x slowdown vs the baseline

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> real_time in ns (aggregate entries like _mean are skipped)."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        times[name] = bench["real_time"] * UNIT_NS[bench.get("time_unit", "ns")]
    return times


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} CURRENT.json [BASELINE.json]")
        return 2
    current = load_times(argv[1])
    baseline = load_times(argv[2] if len(argv) > 2 else "ci/bench_baseline.json")

    regressions = []
    for name, base_ns in sorted(baseline.items()):
        if name not in current:
            print(f"::warning::benchmark '{name}' missing from the current run")
            continue
        ratio = current[name] / base_ns
        marker = "  <-- REGRESSION" if ratio > THRESHOLD else ""
        print(f"{name}: {current[name] / 1e6:.2f} ms vs baseline "
              f"{base_ns / 1e6:.2f} ms ({ratio:.2f}x){marker}")
        if ratio > THRESHOLD:
            regressions.append((name, ratio))

    for name, ratio in regressions:
        print(f"::warning title=perf regression::{name} is {ratio:.2f}x the "
              f"checked-in baseline (threshold {THRESHOLD}x); runners are "
              f"noisy — compare the uploaded BENCH_*.json artifacts before "
              f"acting")
    if not regressions:
        print(f"all benchmarks within {THRESHOLD}x of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
